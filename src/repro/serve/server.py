"""The concurrent validation server: futures in, micro-batched verdicts out.

:class:`ValidationServer` is the validation-as-a-service deployment of the
paper's guarded classifier: producers :meth:`~ValidationServer.submit`
single images and get :class:`~repro.serve.futures.VerdictFuture`\\ s;
worker threads pull coalesced batches from a
:class:`~repro.serve.batcher.MicroBatcher` and drive one shared
(thread-safe) :class:`~repro.core.monitor.RuntimeMonitor`, so a burst of
N single-image requests costs a handful of packed forward passes instead
of N.

Three structured, non-exceptional outcomes extend the monitor's verdict
vocabulary at the queueing layer:

* ``OVERLOADED`` — the bounded queue was full at submit time; the request
  was never enqueued (explicit backpressure, not an unbounded pile-up);
* ``EXPIRED`` — the request's deadline elapsed while it waited in the
  queue; it is resolved unscored when a worker dequeues it;
* requests whose array is not a single ``(C, H, W)`` image are
  ``QUARANTINED`` at the door (the per-request contract is one image —
  shape triage happens before batching so one malformed request can
  never corrupt a coalesced batch).

Determinism: workers score each batch through ``monitor.classify`` on the
stacked request images (grouped by shape + dtype, in arrival order), so a
request's verdict is bit-identical to calling the monitor directly with
the same batch. Numerical note: float32 BLAS kernels differ across batch
*sizes* (~1e-7 in joint discrepancy between a 64-wide batch and 64
singleton calls), so results are exactly reproducible for a given batch
partition, and agree to tight tolerance across partitions — see
``docs/serving.md``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import obs
from repro.core import resilience
from repro.core.monitor import RuntimeMonitor, ValidationVerdict
from repro.serve.batcher import MicroBatcher
from repro.serve.futures import VerdictFuture

#: Queue-level verdict statuses (extending :data:`repro.core.resilience.STATUSES`).
OVERLOADED = "OVERLOADED"
EXPIRED = "EXPIRED"


def _requests_counter():
    return obs.counter(
        "serve_requests_total",
        help="Serve requests by final outcome",
        labels=("outcome",),
    )


def _batch_size_histogram():
    return obs.histogram(
        "serve_batch_size",
        help="Scored micro-batch widths",
        bounds=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
    )


def _wait_seconds_histogram():
    return obs.histogram(
        "serve_wait_seconds",
        help="Queue wait per request (enqueue to batch dispatch)",
    )


@dataclass
class _Ticket:
    """One queued request: its image, its future, and its timing."""

    image: np.ndarray
    future: VerdictFuture
    enqueued_at: float
    deadline: float | None


@dataclass(frozen=True)
class ServeConfig:
    """Tuning knobs for :class:`ValidationServer`.

    ``max_batch`` bounds batch width (throughput knob), ``max_wait_ms``
    bounds how long a partial batch lingers for more arrivals (latency
    knob), ``queue_depth`` bounds queued requests before backpressure,
    ``workers`` is the scoring thread count, and ``default_timeout_ms``
    (optional) gives every request a queue deadline unless ``submit``
    overrides it.
    """

    max_batch: int = 32
    max_wait_ms: float = 2.0
    queue_depth: int = 256
    workers: int = 1
    default_timeout_ms: float | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.default_timeout_ms is not None and self.default_timeout_ms < 0:
            raise ValueError(
                f"default_timeout_ms must be >= 0, got {self.default_timeout_ms}"
            )


class ValidationServer:
    """Micro-batching front-end over one thread-safe :class:`RuntimeMonitor`.

    Usable as a context manager (``with ValidationServer(monitor) as srv``)
    — workers start on entry and are drained and joined on exit. The
    monitor's ``stats``/``health()`` keep counting exactly as under serial
    use; the server adds its own queue-level tallies via :meth:`stats`.
    """

    def __init__(
        self,
        monitor: RuntimeMonitor,
        config: ServeConfig | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.monitor = monitor
        self.config = config if config is not None else ServeConfig()
        self._clock = clock if clock is not None else time.monotonic
        self.batcher = MicroBatcher(
            max_batch=self.config.max_batch,
            max_wait_ms=self.config.max_wait_ms,
            queue_depth=self.config.queue_depth,
            clock=self._clock,
        )
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._started = False
        self._closed = False
        self._counts = {
            "submitted": 0,
            "completed": 0,
            "overloaded": 0,
            "expired": 0,
            "quarantined_at_submit": 0,
            "batches": 0,
            "worker_errors": 0,
        }

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "ValidationServer":
        """Spawn the worker threads (idempotent)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("server already closed")
            if self._started:
                return self
            self._started = True
            for index in range(self.config.workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-serve-worker-{index}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()
        return self

    def close(self, timeout: float | None = None) -> None:
        """Stop accepting requests, drain the queue, join the workers.

        Queued requests are still scored (the batcher drains before
        workers exit). ``timeout`` bounds the per-thread join — a wedged
        worker (e.g. a deadlocked scorer under fault injection) then
        leaves its futures unresolved rather than hanging ``close``.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.batcher.close()
        for thread in self._threads:
            thread.join(timeout)

    def __enter__(self) -> "ValidationServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request side ----------------------------------------------------------

    def submit(
        self, image: np.ndarray, timeout_ms: float | None = None
    ) -> VerdictFuture:
        """Enqueue one image; returns its future immediately.

        ``timeout_ms`` (defaulting to ``config.default_timeout_ms``) is a
        queue deadline on the server clock: a request still waiting when
        it expires is resolved ``EXPIRED`` instead of scored. Rejections
        (bad shape, full queue) resolve the returned future immediately
        with a structured verdict — ``submit`` itself never raises on bad
        input, matching the monitor's fail-safe contract.
        """
        future = VerdictFuture()
        try:
            array = np.asarray(image)
        except Exception as exc:  # noqa: BLE001 — fail-safe, mirror InputGuard
            self._resolve_rejection(
                future,
                resilience.QUARANTINED,
                f"input not convertible to an array: {exc}",
                "quarantined_at_submit",
            )
            return future
        if array.ndim == 4 and array.shape[0] == 1:
            array = array[0]
        if array.ndim != 3:
            self._resolve_rejection(
                future,
                resilience.QUARANTINED,
                f"serve requests must be single (C, H, W) images, got shape "
                f"{array.shape}",
                "quarantined_at_submit",
            )
            return future
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot submit to a closed server")
            self._counts["submitted"] += 1
        if timeout_ms is None:
            timeout_ms = self.config.default_timeout_ms
        now = self._clock()
        ticket = _Ticket(
            image=array,
            future=future,
            enqueued_at=now,
            deadline=None if timeout_ms is None else now + timeout_ms / 1000.0,
        )
        if not self.batcher.offer(ticket):
            self._resolve_rejection(
                future, OVERLOADED, "request queue full", "overloaded"
            )
        return future

    def classify(self, image: np.ndarray, timeout: float | None = None):
        """Submit one image and block for its verdict (convenience)."""
        return self.submit(image).result(timeout)

    # -- worker side -----------------------------------------------------------

    def _rejection_verdict(self, status: str, reason: str) -> ValidationVerdict:
        n_layers = max(len(self.monitor.validator.validators), 1)
        return ValidationVerdict(
            prediction=-1,
            joint_discrepancy=float("nan"),
            per_layer=np.full(n_layers, np.nan),
            accepted=False,
            status=status,
            reason=reason,
        )

    def _resolve_rejection(
        self, future: VerdictFuture, status: str, reason: str, count_key: str
    ) -> None:
        with self._lock:
            self._counts[count_key] += 1
        _requests_counter().labels(outcome=count_key).inc()
        future._resolve(self._rejection_verdict(status, reason))

    def _worker_loop(self) -> None:
        while True:
            batch = self.batcher.next_batch()
            if batch is None:
                return
            try:
                self._process(batch)
            except Exception as exc:  # noqa: BLE001 — a worker must outlive a batch
                with self._lock:
                    self._counts["worker_errors"] += 1
                for ticket in batch:
                    if not ticket.future.done():
                        ticket.future._fail(exc)

    def _process(self, batch: list[_Ticket]) -> None:
        now = self._clock()
        live: list[_Ticket] = []
        for ticket in batch:
            _wait_seconds_histogram().observe(max(0.0, now - ticket.enqueued_at))
            if ticket.deadline is not None and now > ticket.deadline:
                self._resolve_rejection(
                    ticket.future,
                    EXPIRED,
                    "queue deadline elapsed before scoring",
                    "expired",
                )
            else:
                live.append(ticket)
        if not live:
            return
        with self._lock:
            self._counts["batches"] += 1
        # Group by per-image shape and dtype so np.stack never promotes a
        # request's dtype (which would perturb its scores relative to a
        # direct monitor call). Groups preserve arrival order.
        groups: dict[tuple, list[_Ticket]] = {}
        for ticket in live:
            groups.setdefault(
                (ticket.image.shape, ticket.image.dtype.str), []
            ).append(ticket)
        for tickets in groups.values():
            images = np.stack([ticket.image for ticket in tickets])
            with obs.span("serve.batch", size=len(tickets)):
                _batch_size_histogram().observe(float(len(tickets)))
                verdicts = self.monitor.classify(images)
            for ticket, verdict in zip(tickets, verdicts):
                with self._lock:
                    self._counts["completed"] += 1
                _requests_counter().labels(outcome="completed").inc()
                ticket.future._resolve(verdict)

    # -- observability ---------------------------------------------------------

    def stats(self) -> dict:
        """Queue-level tallies plus the current queue depth (atomic copy)."""
        with self._lock:
            counts = dict(self._counts)
        counts["queue_depth"] = len(self.batcher)
        return counts

    def __repr__(self) -> str:
        return (
            f"ValidationServer(workers={self.config.workers}, "
            f"max_batch={self.config.max_batch}, stats={self.stats()})"
        )
