"""Per-request futures for the micro-batching validation server.

A deliberately small, dependency-free future: one producer (a serve
worker) resolves it exactly once with either a verdict or an exception;
any number of consumers block on :meth:`VerdictFuture.result`. Compared
to ``concurrent.futures.Future`` it drops cancellation and callback
machinery the serving layer doesn't need, and raises a serve-specific
:class:`ResultTimeout` so callers can distinguish "my wait expired" from
the structured queue-level rejections (``OVERLOADED`` / ``EXPIRED``
verdicts, which resolve the future normally).
"""

from __future__ import annotations

import threading


class ResultTimeout(TimeoutError):
    """Raised by :meth:`VerdictFuture.result` when its wait times out.

    The request itself is still in flight — the future may resolve later;
    only this particular wait gave up.
    """


class VerdictFuture:
    """A write-once slot a serve worker fills with one request's verdict."""

    __slots__ = ("_event", "_value", "_exception", "_lock")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value = None
        self._exception: BaseException | None = None
        self._lock = threading.Lock()

    def done(self) -> bool:
        """Whether a verdict (or failure) has landed."""
        return self._event.is_set()

    def result(self, timeout: float | None = None):
        """Block until resolved; returns the verdict or re-raises a failure.

        ``timeout`` is in seconds (real time — waiting threads cannot run
        on an injected clock); on expiry :class:`ResultTimeout` is raised
        and the future stays valid for a later wait.
        """
        if not self._event.wait(timeout):
            raise ResultTimeout(
                f"verdict not available within {timeout}s (request still in flight)"
            )
        if self._exception is not None:
            raise self._exception
        return self._value

    # -- producer side (serve workers only) ------------------------------------

    def _resolve(self, value) -> None:
        if not self._try_resolve(value):
            raise RuntimeError("future already resolved")

    def _fail(self, exception: BaseException) -> None:
        if not self._try_fail(exception):
            raise RuntimeError("future already resolved")

    def _try_resolve(self, value) -> bool:
        """Resolve if still pending; ``False`` when someone beat us to it.

        The supervision layer needs first-writer-wins semantics: a
        restarted worker retrying a requeued ticket can race the server's
        close-time drain sweep, and exactly one of them may land.
        """
        with self._lock:
            if self._event.is_set():
                return False
            self._value = value
            self._event.set()
            return True

    def _try_fail(self, exception: BaseException) -> bool:
        """Fail if still pending; ``False`` when already resolved."""
        with self._lock:
            if self._event.is_set():
                return False
            self._exception = exception
            self._event.set()
            return True

    def __repr__(self) -> str:
        state = "resolved" if self.done() else "pending"
        return f"VerdictFuture({state})"
