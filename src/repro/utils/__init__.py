"""Shared utilities: seeded RNG plumbing, artifact caching, table rendering."""

from repro.utils.cache import (
    ArtifactCache,
    ArtifactIntegrityError,
    LRUCache,
    default_cache,
    hash_array,
)
from repro.utils.rng import new_rng, spawn_rngs
from repro.utils.tables import format_table
from repro.utils.validation import check_positive, check_probability, check_shape
from repro.utils.warnings_ import emit_warning, strict_mode

__all__ = [
    "ArtifactCache",
    "ArtifactIntegrityError",
    "LRUCache",
    "emit_warning",
    "strict_mode",
    "default_cache",
    "hash_array",
    "new_rng",
    "spawn_rngs",
    "format_table",
    "check_positive",
    "check_probability",
    "check_shape",
]
