"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's tables report; this
module renders them as aligned monospace tables so ``pytest -s`` output is
directly comparable with the paper.
"""

from __future__ import annotations

from typing import Any, Sequence


def _cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    rendered = [[_cell(v) for v in row] for row in rows]
    for i, row in enumerate(rendered):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in rendered)) if rendered else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rendered:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
