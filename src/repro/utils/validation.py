"""Small argument-validation helpers used across the public API."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` lies in [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")


def check_shape(name: str, array: np.ndarray, shape: Sequence[int | None]) -> None:
    """Raise ``ValueError`` unless ``array`` matches ``shape``.

    ``None`` entries in ``shape`` match any extent on that axis.
    """
    if array.ndim != len(shape):
        raise ValueError(
            f"{name} must have {len(shape)} dimensions, got shape {array.shape}"
        )
    for axis, (got, want) in enumerate(zip(array.shape, shape)):
        if want is not None and got != want:
            raise ValueError(
                f"{name} axis {axis} must have extent {want}, got shape {array.shape}"
            )
