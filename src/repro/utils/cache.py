"""On-disk artifact cache shared by tests, benchmarks, and examples.

Training even a small CNN in pure numpy takes tens of seconds, so every
expensive artifact (trained models, fitted validators, searched corner-case
suites) is cached on disk keyed by a stable hash of its configuration.
Entries are pickled; the cache directory defaults to ``.artifacts/`` at the
repository root and can be relocated with the ``REPRO_CACHE_DIR``
environment variable.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any, Callable


def _stable_hash(config: Any) -> str:
    """Hash an arbitrary JSON-serialisable config into a short hex key."""
    payload = json.dumps(config, sort_keys=True, default=str).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


class ArtifactCache:
    """A content-addressed pickle cache.

    Keys are ``(name, config)`` pairs; ``config`` must be JSON-serialisable
    (anything else is stringified, which is fine as long as the string is
    stable across runs).
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, name: str, config: Any) -> Path:
        """Deterministic cache path for a (name, config) pair."""
        return self.root / f"{name}-{_stable_hash(config)}.pkl"

    def contains(self, name: str, config: Any) -> bool:
        """Whether a cached entry exists for (name, config)."""
        return self.path_for(name, config).exists()

    def load(self, name: str, config: Any) -> Any:
        """Unpickle the cached value for (name, config)."""
        path = self.path_for(name, config)
        with open(path, "rb") as fh:
            return pickle.load(fh)

    def store(self, name: str, config: Any, value: Any) -> None:
        """Pickle ``value`` under (name, config), atomically."""
        path = self.path_for(name, config)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "wb") as fh:
            pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)

    def get_or_build(self, name: str, config: Any, build: Callable[[], Any]) -> Any:
        """Return the cached value for ``(name, config)``, building it once."""
        if self.contains(name, config):
            return self.load(name, config)
        value = build()
        self.store(name, config, value)
        return value

    def clear(self) -> int:
        """Delete every cache entry; returns the number of files removed."""
        removed = 0
        for path in self.root.glob("*.pkl"):
            path.unlink()
            removed += 1
        return removed


def default_cache() -> ArtifactCache:
    """The repository-wide cache (``.artifacts/`` or ``$REPRO_CACHE_DIR``)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    if root is None:
        root = Path(__file__).resolve().parents[3] / ".artifacts"
    return ArtifactCache(root)
