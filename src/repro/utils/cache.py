"""Caching utilities: the on-disk artifact cache and an in-memory LRU.

Training even a small CNN in pure numpy takes tens of seconds, so every
expensive artifact (trained models, fitted validators, searched corner-case
suites) is cached on disk keyed by a stable hash of its configuration.
Entries are pickled; the cache directory defaults to ``.artifacts/`` at the
repository root and can be relocated with the ``REPRO_CACHE_DIR``
environment variable.

:class:`LRUCache` is the in-memory counterpart used on hot paths — the
batched validation engine keys activation/score results on a content hash
of the input batch so repeated scoring of the same images (threshold
calibration followed by flagging, monitoring replays) skips the forward
pass and the kernel evaluations entirely.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import uuid
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Hashable

import json

import numpy as np


def _encode_opaque(value: Any) -> dict:
    """JSON stand-in for a non-serialisable config value: type + repr.

    ``json.dumps(default=str)`` used to collapse distinct non-JSON values
    whose ``str()`` coincide (e.g. ``Decimal("1")`` and the string
    ``"1"``, or two enum members from different enums with the same
    member name) into the same artifact key — silent cache aliasing.
    Encoding the fully-qualified type alongside ``repr`` keeps the key
    stable across runs while separating values that merely print alike.
    """
    kind = type(value)
    return {
        "__opaque__": f"{kind.__module__}.{kind.__qualname__}",
        "__repr__": repr(value),
    }


def _stable_hash(config: Any) -> str:
    """Hash an arbitrary JSON-serialisable config into a short hex key.

    Values JSON cannot serialise are encoded as type + repr (see
    :func:`_encode_opaque`); pure-JSON configs hash exactly as before, so
    existing on-disk artifact keys stay valid.
    """
    payload = json.dumps(config, sort_keys=True, default=_encode_opaque).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


def hash_array(*arrays: np.ndarray) -> str:
    """Content hash of one or more arrays, suitable as an LRU cache key.

    Includes shape and dtype so that e.g. a (4, 9) float32 batch and its
    (36,) flattened view hash differently.
    """
    digest = hashlib.sha256()
    for array in arrays:
        array = np.ascontiguousarray(array)
        digest.update(str(array.dtype).encode())
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


class ArtifactIntegrityError(RuntimeError):
    """A cached artifact failed its content-checksum verification."""


class _HashingWriter:
    """File-object wrapper that feeds every written byte to a digest."""

    def __init__(self, fh) -> None:
        self._fh = fh
        self.digest = hashlib.sha256()

    def write(self, data) -> int:
        self.digest.update(data)
        return self._fh.write(data)


class ArtifactCache:
    """A content-addressed pickle cache with integrity verification.

    Keys are ``(name, config)`` pairs; ``config`` must be JSON-serialisable
    (anything else is stringified, which is fine as long as the string is
    stable across runs).

    Every stored pickle gets a ``<file>.sha256`` sidecar with the digest of
    its bytes; :meth:`load` verifies it, and an entry whose sidecar is
    missing, stale, or whose pickle no longer matches is *quarantined* —
    moved into a ``.quarantine/`` subdirectory for post-mortem inspection —
    rather than half-loaded or silently deleted.
    """

    #: Subdirectory (under the cache root) that corrupt entries are moved to.
    QUARANTINE_DIR = ".quarantine"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, name: str, config: Any) -> Path:
        """Deterministic cache path for a (name, config) pair."""
        return self.root / f"{name}-{_stable_hash(config)}.pkl"

    def checksum_path_for(self, name: str, config: Any) -> Path:
        """Path of the checksum sidecar written beside each pickle."""
        path = self.path_for(name, config)
        return path.with_name(path.name + ".sha256")

    def contains(self, name: str, config: Any) -> bool:
        """Whether a cached entry exists for (name, config)."""
        return self.path_for(name, config).exists()

    def load(self, name: str, config: Any, verify: bool = True) -> Any:
        """Unpickle the cached value for (name, config), verifying integrity.

        With ``verify`` (the default), the pickle's bytes are hashed and
        compared to the ``.sha256`` sidecar before unpickling. A missing
        sidecar or a mismatched digest quarantines the entry and raises
        :class:`ArtifactIntegrityError` — a truncated or bit-flipped
        artifact is never half-loaded. ``verify=False`` restores the
        trusting pre-checksum behaviour.
        """
        path = self.path_for(name, config)
        if not verify:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        with open(path, "rb") as fh:
            payload = fh.read()
        sidecar = self.checksum_path_for(name, config)
        if not sidecar.exists():
            self.quarantine(name, config)
            raise ArtifactIntegrityError(
                f"{path.name}: checksum sidecar missing; entry quarantined"
            )
        expected = sidecar.read_text().strip()
        actual = hashlib.sha256(payload).hexdigest()
        if actual != expected:
            self.quarantine(name, config)
            raise ArtifactIntegrityError(
                f"{path.name}: checksum mismatch (expected {expected[:12]}…, "
                f"got {actual[:12]}…); entry quarantined"
            )
        return pickle.loads(payload)

    def store(self, name: str, config: Any, value: Any) -> None:
        """Pickle ``value`` under (name, config), atomically, with checksum.

        The temp file carries a per-write unique suffix (pid + random), so
        concurrent processes building the same artifact each write their
        own staging file and the final ``os.replace`` promotes a complete
        pickle — never a half-written one another writer clobbered. The
        digest is computed while writing and landed in a ``.sha256``
        sidecar (same staging discipline) after the pickle is promoted; a
        crash between the two leaves a sidecar-less entry, which
        :meth:`get_or_build` treats as stale and rebuilds.
        """
        path = self.path_for(name, config)
        tmp = path.with_name(f"{path.name}.{os.getpid()}-{uuid.uuid4().hex}.tmp")
        try:
            with open(tmp, "wb") as fh:
                writer = _HashingWriter(fh)
                pickle.dump(value, writer, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # only on a failed write; replace consumed it
                tmp.unlink()
        sidecar = self.checksum_path_for(name, config)
        sidecar_tmp = sidecar.with_name(f"{sidecar.name}.{os.getpid()}-{uuid.uuid4().hex}.tmp")
        try:
            sidecar_tmp.write_text(writer.digest.hexdigest() + "\n")
            os.replace(sidecar_tmp, sidecar)
        finally:
            if sidecar_tmp.exists():
                sidecar_tmp.unlink()

    def discard(self, name: str, config: Any) -> bool:
        """Remove the entry for (name, config); returns whether one existed."""
        path = self.path_for(name, config)
        sidecar = self.checksum_path_for(name, config)
        if sidecar.exists():
            sidecar.unlink()
        if path.exists():
            path.unlink()
            return True
        return False

    def quarantine(self, name: str, config: Any) -> Path | None:
        """Move a corrupt entry (and sidecar) into ``.quarantine/``.

        Returns the quarantined pickle's new path, or ``None`` if no entry
        existed. Quarantined files keep their name plus a unique suffix,
        so repeated corruption of the same key never clobbers evidence.
        """
        path = self.path_for(name, config)
        if not path.exists():
            return None
        hole = self.root / self.QUARANTINE_DIR
        hole.mkdir(parents=True, exist_ok=True)
        token = f"{os.getpid()}-{uuid.uuid4().hex[:8]}"
        destination = hole / f"{path.name}.{token}"
        os.replace(path, destination)
        sidecar = self.checksum_path_for(name, config)
        if sidecar.exists():
            os.replace(sidecar, hole / f"{sidecar.name}.{token}")
        return destination

    def get_or_build(self, name: str, config: Any, build: Callable[[], Any]) -> Any:
        """Return the cached value for ``(name, config)``, building it once.

        A cache entry that fails integrity verification (missing or stale
        checksum sidecar, bit-flipped or truncated bytes) or that cannot
        be unpickled (a foreign file, an artifact pickled against a class
        that has since changed) is treated as a miss: the entry is
        quarantined and rebuilt rather than poisoning every future run.
        """
        if self.contains(name, config):
            try:
                return self.load(name, config)
            except ArtifactIntegrityError:
                pass  # load already quarantined the entry
            except (pickle.UnpicklingError, EOFError, AttributeError,
                    ImportError, IndexError, ValueError):
                self.quarantine(name, config)
        value = build()
        self.store(name, config, value)
        return value

    def clear(self) -> int:
        """Delete every cache entry; returns the number of pickles removed.

        Checksum sidecars are removed alongside their pickles; quarantined
        evidence under ``.quarantine/`` is left untouched.
        """
        removed = 0
        for path in self.root.glob("*.pkl"):
            path.unlink()
            removed += 1
        for sidecar in self.root.glob("*.pkl.sha256"):
            sidecar.unlink()
        return removed


class _InFlight:
    """Single-flight rendezvous for one key's in-progress compute."""

    __slots__ = ("event", "value", "success")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.success = False


class LRUCache:
    """A bounded in-memory cache with least-recently-used eviction.

    Both reads and writes refresh an entry's recency; once ``maxsize``
    entries are held, inserting a new key evicts the stalest one. Hit and
    miss counts are tracked so callers (and tests) can audit cache
    effectiveness.

    All bookkeeping is guarded by a lock, so validation engines shared
    across scoring threads never corrupt the recency ordering or the
    counters. ``get_or_compute`` runs ``compute`` outside the lock and is
    **single-flight**: of N threads that miss the same key concurrently,
    exactly one (the leader) runs ``compute`` — counted as the one miss —
    while the rest block on the leader's result and count as hits, so
    ``hits + misses`` always equals the number of requests and the
    expensive compute runs once. A slow compute never blocks lookups of
    other keys. ``compute`` must not re-enter the cache on the *same*
    key (it would rendezvous with itself); other keys are fine.
    """

    def __init__(self, maxsize: int = 128) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.RLock()
        self._flights: dict[Hashable, _InFlight] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Membership test; does not touch recency or hit/miss counters."""
        with self._lock:
            return key in self._entries

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_lock", None)  # locks don't pickle; restore a fresh one
        state.pop("_flights", None)  # in-flight computes are process-local
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()
        self._flights = {}

    def _lookup(self, key: Hashable) -> tuple[bool, Any]:
        """One locked probe: ``(hit, value)`` with counters updated."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return True, self._entries[key]
            self.misses += 1
            return False, None

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, marking it most recently used on a hit."""
        hit, value = self._lookup(key)
        return value if hit else default

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``, evicting the LRU entry when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1

    def get_or_compute(
        self,
        key: Hashable,
        compute: Callable[[], Any],
        cache_if: Callable[[Any], bool] | None = None,
    ) -> Any:
        """Return the cached value for ``key``, computing once on miss.

        Single-flight: concurrent misses on the same key elect one leader
        to run ``compute``; the others wait and adopt its result (counted
        as hits, so ``hits + misses`` tracks requests exactly). If the
        leader's ``compute`` raises, the exception propagates to the
        leader and the waiters retry — one of them becomes the new
        leader. ``cache_if`` (optional) vetoes storing the computed value
        in the cache; the value is still returned — and still shared with
        concurrent waiters — it just isn't memoised for later calls.
        """
        while True:
            with self._lock:
                if key in self._entries:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return self._entries[key]
                flight = self._flights.get(key)
                if flight is None:
                    flight = _InFlight()
                    self._flights[key] = flight
                    self.misses += 1
                    leader = True
                else:
                    leader = False
            if not leader:
                flight.event.wait()
                if flight.success:
                    with self._lock:
                        self.hits += 1
                    return flight.value
                continue  # the leader failed; race to become the next one
            try:
                value = compute()
            except BaseException:
                with self._lock:
                    self._flights.pop(key, None)
                flight.event.set()
                raise
            if cache_if is None or cache_if(value):
                self.put(key, value)
            flight.value = value
            flight.success = True
            with self._lock:
                self._flights.pop(key, None)
            flight.event.set()
            return value

    def keys(self) -> list[Hashable]:
        """Keys from least to most recently used."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        """Drop every entry; counters are preserved."""
        with self._lock:
            self._entries.clear()

    @property
    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction accounting plus current size."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
                "maxsize": self.maxsize,
            }


def default_cache() -> ArtifactCache:
    """The repository-wide cache (``.artifacts/`` or ``$REPRO_CACHE_DIR``)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    if root is None:
        root = Path(__file__).resolve().parents[3] / ".artifacts"
    return ArtifactCache(root)
