"""Centralised warning emission with strict-mode escalation.

Resilience warnings (:class:`~repro.core.fitting.ParallelFitWarning`,
:class:`~repro.core.resilience.DegradedModeWarning`) signal that the system
kept running in a reduced mode. In production that is exactly right; in an
experiment run it can silently change what is being measured. Routing every
such warning through :func:`emit_warning` gives operators one switch:
``REPRO_STRICT=1`` turns any degraded-mode warning into a raised exception,
so experiment pipelines fail loudly instead of quietly measuring a
fallback path.
"""

from __future__ import annotations

import os
import warnings

#: Environment variable that escalates resilience warnings to errors.
STRICT_ENV = "REPRO_STRICT"

#: Values of ``REPRO_STRICT`` treated as "off".
_FALSY = {"", "0", "false", "no", "off"}


def strict_mode() -> bool:
    """Whether ``REPRO_STRICT`` requests escalation of warnings to errors."""
    return os.environ.get(STRICT_ENV, "").strip().lower() not in _FALSY


def emit_warning(
    message: str,
    category: type[Warning] = RuntimeWarning,
    stacklevel: int = 2,
) -> None:
    """Emit ``message`` as a warning, or raise it under ``REPRO_STRICT=1``.

    ``Warning`` subclasses ``Exception``, so in strict mode the warning
    class itself is raised — callers can catch exactly the category they
    would otherwise have filtered.
    """
    if strict_mode():
        raise category(message)
    warnings.warn(message, category, stacklevel=stacklevel + 1)
