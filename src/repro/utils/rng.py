"""Deterministic random-number plumbing.

Every stochastic component in the library takes either an integer seed or a
``numpy.random.Generator``. These helpers normalise between the two and let a
parent generator spawn independent child streams, so experiments are
reproducible end to end from a single seed.
"""

from __future__ import annotations

import copy

import numpy as np

RngLike = int | np.random.Generator | None


def new_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    ``seed`` may be an integer, an existing generator (returned unchanged so
    callers can thread a single stream through a pipeline), or ``None`` for
    OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` statistically independent child generators.

    Independence comes from ``SeedSequence.spawn``, so the children do not
    overlap even when ``count`` is large.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        return [np.random.default_rng(s) for s in seed.bit_generator.seed_seq.spawn(count)]
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(count)]


def get_rng_state(gen: np.random.Generator) -> dict:
    """Snapshot a generator's exact bit-generator state (picklable).

    The returned dict, fed back through :func:`set_rng_state`, makes the
    generator continue the *identical* stream — the primitive that lets
    checkpointed pipelines resume bit-for-bit rather than merely
    re-seeded. The state is deep-copied, so later draws from ``gen`` do
    not mutate an already-captured snapshot.
    """
    return copy.deepcopy(gen.bit_generator.state)


def set_rng_state(gen: np.random.Generator, state: dict) -> None:
    """Restore a state captured by :func:`get_rng_state` into ``gen``.

    The bit-generator types must match (e.g. both PCG64); numpy raises
    ``TypeError`` otherwise. The state is deep-copied in, so the snapshot
    stays reusable after the generator advances.
    """
    gen.bit_generator.state = copy.deepcopy(state)
