"""Deterministic random-number plumbing.

Every stochastic component in the library takes either an integer seed or a
``numpy.random.Generator``. These helpers normalise between the two and let a
parent generator spawn independent child streams, so experiments are
reproducible end to end from a single seed.
"""

from __future__ import annotations

import numpy as np

RngLike = int | np.random.Generator | None


def new_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    ``seed`` may be an integer, an existing generator (returned unchanged so
    callers can thread a single stream through a pipeline), or ``None`` for
    OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, count: int) -> list[np.random.Generator]:
    """Spawn ``count`` statistically independent child generators.

    Independence comes from ``SeedSequence.spawn``, so the children do not
    overlap even when ``count`` is large.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        return [np.random.default_rng(s) for s in seed.bit_generator.seed_seq.spawn(count)]
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in seq.spawn(count)]
