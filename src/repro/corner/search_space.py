"""Transformation search spaces (paper Table IV).

Each space enumerates parameterised transforms in increasing distortion
strength. Two-parameter transforms enumerate the full grid ordered by
strength level (rings of the grid), so asymmetric configurations like the
paper's shear ``(0.2, 0.3)`` or translation ``(4, 3)`` are reachable before
the symmetric extremes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.transforms.compose import (
    Brightness,
    Complement,
    Contrast,
    Rotation,
    Scale,
    Shear,
    Transform,
    Translation,
)


@dataclass(frozen=True)
class TransformationSpace:
    """An ordered family of increasingly strong transforms of one kind."""

    name: str
    configs: tuple[Transform, ...]
    greyscale_only: bool = False

    def __len__(self) -> int:
        return len(self.configs)


def _strength_ordered_grid(
    values_a: Sequence[float], values_b: Sequence[float]
) -> list[tuple[float, float]]:
    """All (a, b) grid points ordered by ring level then taxicab strength.

    Level of ``(a, b)`` is ``max(index_a, index_b)`` — the outermost grid
    ring it belongs to. Within a level, points are ordered by total index so
    milder asymmetric combinations come first. The all-zero origin (identity
    transform) is skipped.
    """
    points = []
    for ia, a in enumerate(values_a):
        for ib, b in enumerate(values_b):
            if ia == 0 and ib == 0:
                continue
            points.append((max(ia, ib), ia + ib, a, b))
    points.sort()
    return [(a, b) for _, _, a, b in points]


def _brightness_space() -> TransformationSpace:
    # Table IV: bias 0 through 0.95 step 0.004 — subsampled to keep search
    # tractable while preserving the fine-grained early region.
    biases = np.round(np.arange(0.02, 0.96, 0.01), 4)
    return TransformationSpace(
        "brightness", tuple(Brightness(float(b)) for b in biases)
    )


def _contrast_space() -> TransformationSpace:
    # Table IV: gain 0 through 5.0 step 0.1. Gains below 1 darken, above 1
    # brighten; distortion strength grows with |alpha - 1| so the sequence
    # interleaves both directions in increasing strength.
    ups = np.round(np.arange(1.1, 5.01, 0.1), 4)
    downs = np.round(np.arange(0.9, 0.0, -0.1), 4)
    ordered: list[float] = []
    i = j = 0
    while i < len(ups) or j < len(downs):
        if i < len(ups):
            ordered.append(float(ups[i]))
            i += 1
        if j < len(downs):
            ordered.append(float(downs[j]))
            j += 1
    return TransformationSpace("contrast", tuple(Contrast(a) for a in ordered))


def _rotation_space() -> TransformationSpace:
    # Table IV: 1 through 70 degrees, step 1.
    return TransformationSpace(
        "rotation", tuple(Rotation(float(t)) for t in range(1, 71))
    )


def _shear_space() -> TransformationSpace:
    # Table IV: (0, 0) through (0.5, 0.5), step (0.1, 0.1).
    values = np.round(np.arange(0.0, 0.51, 0.1), 4)
    pairs = _strength_ordered_grid(values, values)
    return TransformationSpace(
        "shear", tuple(Shear(float(a), float(b)) for a, b in pairs)
    )


def _scale_space() -> TransformationSpace:
    # Table IV: (1, 1) through (0.4, 0.4), step (0.1, 0.1) — shrinking.
    values = np.round(np.arange(1.0, 0.39, -0.1), 4)
    pairs = _strength_ordered_grid(values, values)
    return TransformationSpace(
        "scale", tuple(Scale(float(a), float(b)) for a, b in pairs)
    )


def _translation_space() -> TransformationSpace:
    # Table IV: (0, 0) through (18, 18), step (1, 1).
    values = np.arange(0.0, 19.0, 1.0)
    pairs = _strength_ordered_grid(values, values)
    return TransformationSpace(
        "translation", tuple(Translation(float(a), float(b)) for a, b in pairs)
    )


def _complement_space() -> TransformationSpace:
    # Complement has no strength parameter (maximum pixel value 1.0) and is
    # only applied to greyscale datasets.
    return TransformationSpace("complement", (Complement(1.0),), greyscale_only=True)


SEARCH_SPACES: dict[str, TransformationSpace] = {
    space.name: space
    for space in (
        _brightness_space(),
        _contrast_space(),
        _rotation_space(),
        _shear_space(),
        _scale_space(),
        _translation_space(),
        _complement_space(),
    )
}

#: The paper's presentation order for transformation rows (Table V).
TRANSFORMATION_ORDER = (
    "brightness",
    "contrast",
    "rotation",
    "shear",
    "scale",
    "translation",
    "complement",
)


def spaces_for_dataset(channels: int) -> list[TransformationSpace]:
    """Search spaces applicable to a dataset with ``channels`` channels.

    Complement is restricted to greyscale datasets (paper Section III-A1).
    """
    return [
        SEARCH_SPACES[name]
        for name in TRANSFORMATION_ORDER
        if channels == 1 or not SEARCH_SPACES[name].greyscale_only
    ]
