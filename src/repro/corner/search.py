"""Trial-and-error grid search for error-inducing transform strengths.

Implements the paper's search strategy (Section III-A2 / IV-B): apply a
transformation with growing distortion to a fixed seed set, monitor the
model's success rate (1 − accuracy), stop at roughly 60 % success, and
discard transformations that never exceed 30 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.corner.search_space import TransformationSpace
from repro.nn.sequential import ProbedSequential
from repro.transforms.compose import Transform

#: The paper stops individual searches at about this success rate.
TARGET_SUCCESS_RATE = 0.6
#: Transformations that never reach this success rate are dropped.
MIN_SUCCESS_RATE = 0.3


@dataclass
class SearchOutcome:
    """Result of searching one transformation family."""

    transformation: str
    config: Transform | None
    success_rate: float
    mean_confidence: float
    viable: bool
    history: list[tuple[str, float]] = field(default_factory=list)

    def describe(self) -> str:
        """One-line summary of the search outcome for reports."""
        if not self.viable:
            return f"{self.transformation}: not viable (best {self.success_rate:.2f})"
        return (
            f"{self.transformation}: {self.config.describe()} "
            f"success={self.success_rate:.3f} confidence={self.mean_confidence:.3f}"
        )


def evaluate_config(
    model: ProbedSequential,
    config: Transform,
    seeds: np.ndarray,
    labels: np.ndarray,
) -> tuple[float, float, np.ndarray]:
    """``(success rate, mean top-1 confidence, transformed images)``.

    Success rate is ``1 - accuracy`` on the transformed seeds; confidence is
    the model's mean top-1 probability on them (Table V's last column).
    """
    transformed = config(seeds)
    probabilities = model.predict_proba(transformed)
    predictions = probabilities.argmax(axis=1)
    success = float((predictions != labels).mean())
    confidence = float(probabilities.max(axis=1).mean())
    return success, confidence, transformed


def grid_search(
    model: ProbedSequential,
    space: TransformationSpace,
    seeds: np.ndarray,
    labels: np.ndarray,
    target_success: float = TARGET_SUCCESS_RATE,
    min_success: float = MIN_SUCCESS_RATE,
    scan_seeds: int = 100,
    max_configs: int = 120,
) -> SearchOutcome:
    """Search ``space`` in increasing strength until the model breaks.

    Stops at the first configuration whose success rate reaches
    ``target_success``; otherwise keeps the best configuration seen and
    marks the transformation non-viable if that best never exceeded
    ``min_success``.

    Two cost controls keep the trial-and-error loop tractable on a laptop:
    the scan phase evaluates only the first ``scan_seeds`` seed images
    (the winning configuration is re-scored on the full seed set), and
    spaces larger than ``max_configs`` are subsampled uniformly in strength
    order.
    """
    configs = list(space.configs)
    if len(configs) > max_configs:
        picks = np.linspace(0, len(configs) - 1, max_configs).round().astype(int)
        configs = [configs[i] for i in np.unique(picks)]
    scan = slice(0, min(scan_seeds, len(seeds)))

    best: tuple[float, float, Transform] | None = None
    history: list[tuple[str, float]] = []
    chosen: Transform | None = None
    for config in configs:
        success, confidence, _ = evaluate_config(model, config, seeds[scan], labels[scan])
        history.append((config.describe(), success))
        if best is None or success > best[0]:
            best = (success, confidence, config)
        if success >= target_success:
            chosen = config
            break
    if chosen is None:
        chosen = best[2]
    # Re-score the chosen configuration on the full seed set.
    success, confidence, _ = evaluate_config(model, chosen, seeds, labels)
    viable = success > min_success
    return SearchOutcome(
        transformation=space.name,
        config=chosen if viable else None,
        success_rate=success,
        mean_confidence=confidence,
        viable=viable,
        history=history,
    )


def search_all_transformations(
    model: ProbedSequential,
    spaces: list[TransformationSpace],
    seeds: np.ndarray,
    labels: np.ndarray,
    target_success: float = TARGET_SUCCESS_RATE,
    min_success: float = MIN_SUCCESS_RATE,
    scan_seeds: int = 100,
) -> list[SearchOutcome]:
    """Run :func:`grid_search` over every applicable transformation family."""
    return [
        grid_search(
            model, space, seeds, labels, target_success, min_success, scan_seeds
        )
        for space in spaces
    ]
