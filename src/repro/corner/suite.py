"""Corner-case suites: the paper's per-dataset evaluation material.

A suite bundles, for one trained classifier, the outcome of the Table IV
grid search: the chosen configuration per transformation, the synthesised
corner cases with SCC/FCC splits (Section IV-D1), the combined
transformation (Section IV-B), and the clean/corner evaluation set used in
every detection experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.corner.search import (
    MIN_SUCCESS_RATE,
    TARGET_SUCCESS_RATE,
    SearchOutcome,
    evaluate_config,
    search_all_transformations,
)
from repro.corner.search_space import spaces_for_dataset
from repro.data.datasets import Dataset, sample_seed_images
from repro.nn.sequential import ProbedSequential
from repro.transforms.compose import Compose, Transform
from repro.utils.rng import RngLike, new_rng


@dataclass
class TransformationResult:
    """Synthesised corner cases for one (chosen) transformation config."""

    transformation: str
    config: Transform
    images: np.ndarray
    seed_labels: np.ndarray
    predictions: np.ndarray
    success_rate: float
    mean_confidence: float

    @property
    def scc_mask(self) -> np.ndarray:
        """Successful corner cases: transformed images that fool the model."""
        return self.predictions != self.seed_labels

    @property
    def scc_images(self) -> np.ndarray:
        return self.images[self.scc_mask]

    @property
    def fcc_images(self) -> np.ndarray:
        """Failed corner cases: transformed but still correctly classified."""
        return self.images[~self.scc_mask]


@dataclass
class CornerCaseSuite:
    """All corner-case material for one dataset/model pair."""

    dataset_name: str
    seeds: np.ndarray
    seed_labels: np.ndarray
    outcomes: list[SearchOutcome]
    results: dict[str, TransformationResult]
    combined_name: str

    @property
    def viable_transformations(self) -> list[str]:
        return list(self.results)

    def result(self, transformation: str) -> TransformationResult:
        """The synthesised corner cases for one transformation."""
        if transformation not in self.results:
            raise KeyError(
                f"no corner cases for {transformation!r}; viable: "
                f"{self.viable_transformations}"
            )
        return self.results[transformation]

    def all_scc_images(self) -> tuple[np.ndarray, np.ndarray]:
        """All successful corner cases with their transformation tags."""
        images, tags = [], []
        for name, result in self.results.items():
            scc = result.scc_images
            images.append(scc)
            tags.extend([name] * len(scc))
        return np.concatenate(images, axis=0), np.asarray(tags)

    def total_corner_cases(self) -> int:
        """Total synthesised corner cases across transformations."""
        return sum(len(r.images) for r in self.results.values())


def _materialise(
    model: ProbedSequential,
    outcome: SearchOutcome,
    seeds: np.ndarray,
    labels: np.ndarray,
) -> TransformationResult:
    transformed = outcome.config(seeds)
    probabilities = model.predict_proba(transformed)
    predictions = probabilities.argmax(axis=1)
    return TransformationResult(
        transformation=outcome.transformation,
        config=outcome.config,
        images=transformed,
        seed_labels=labels,
        predictions=predictions,
        success_rate=float((predictions != labels).mean()),
        mean_confidence=float(probabilities.max(axis=1).mean()),
    )


def _search_combined(
    model: ProbedSequential,
    single_outcomes: list[SearchOutcome],
    seeds: np.ndarray,
    labels: np.ndarray,
) -> SearchOutcome:
    """Pick the combined transformation (Section IV-B).

    Pairs of viable transformations reuse their searched parameters; among
    pairs that clearly enrich the corner cases (success above the single
    target), the one with the smallest pixel deformation is selected — it
    preserves semantics best and stress-tests detector sensitivity.
    """
    viable = [o for o in single_outcomes if o.viable]
    if len(viable) < 2:
        raise ValueError("need at least two viable transformations to combine")
    candidates = []
    for first, second in combinations(viable, 2):
        config = Compose([first.config, second.config])
        success, confidence, transformed = evaluate_config(model, config, seeds, labels)
        deformation = float(np.abs(transformed - seeds).mean())
        candidates.append((success, confidence, deformation, config))
    strong = [c for c in candidates if c[0] >= TARGET_SUCCESS_RATE]
    pool = strong if strong else candidates
    success, confidence, _, config = min(pool, key=lambda c: (c[2], -c[0]))
    return SearchOutcome(
        transformation="combined",
        config=config,
        success_rate=success,
        mean_confidence=confidence,
        viable=success > MIN_SUCCESS_RATE,
    )


def build_corner_case_suite(
    model: ProbedSequential,
    dataset: Dataset,
    seed_count: int = 200,
    rng: RngLike = 0,
    target_success: float = TARGET_SUCCESS_RATE,
    scan_seeds: int = 100,
) -> CornerCaseSuite:
    """Run the full Table IV/V pipeline for one trained classifier."""
    gen = new_rng(rng)
    seeds, labels = sample_seed_images(dataset, model, count=seed_count, rng=gen)
    spaces = spaces_for_dataset(dataset.channels)
    outcomes = search_all_transformations(
        model, spaces, seeds, labels,
        target_success=target_success, scan_seeds=scan_seeds,
    )
    results: dict[str, TransformationResult] = {}
    for outcome in outcomes:
        if outcome.viable:
            results[outcome.transformation] = _materialise(model, outcome, seeds, labels)
    combined = _search_combined(
        model, [o for o in outcomes if o.viable], seeds, labels
    )
    outcomes = outcomes + [combined]
    if combined.viable:
        results["combined"] = _materialise(model, combined, seeds, labels)
    return CornerCaseSuite(
        dataset_name=dataset.name,
        seeds=seeds,
        seed_labels=labels,
        outcomes=outcomes,
        results=results,
        combined_name=combined.config.describe() if combined.viable else "-",
    )
