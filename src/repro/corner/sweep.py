"""Distortion sweeps: detection behaviour under growing transformation strength.

Section IV-D6 evaluates detectors "under this dynamic setting": instead of
one searched operating point per transformation, a whole strength range is
swept and, at a matched clean false-positive rate, the detection rate is
tracked separately for successful (SCC) and failed (FCC) corner cases.
Figure 4 is one instance of this; the machinery here generalises it to any
parameterised transform family and any score function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.metrics.rates import threshold_at_fpr, true_positive_rate
from repro.transforms.compose import Transform


@dataclass
class SweepLevel:
    """Measurements at one distortion strength."""

    config: Transform
    success_rate: float
    scc_count: int
    fcc_count: int
    detection_scc: float | None
    detection_fcc: float | None

    @property
    def label(self) -> str:
        return self.config.describe()


@dataclass
class DistortionSweep:
    """A full sweep: per-level results at a fixed clean FPR."""

    detector_name: str
    fpr: float
    threshold: float
    levels: list[SweepLevel]

    def success_rates(self) -> list[float]:
        """Per-level corner-case success rates."""
        return [level.success_rate for level in self.levels]

    def scc_detection(self) -> list[float | None]:
        """Per-level detection rate on successful corner cases."""
        return [level.detection_scc for level in self.levels]

    def fcc_detection(self) -> list[float | None]:
        """Per-level detection rate on failed corner cases."""
        return [level.detection_fcc for level in self.levels]


def run_distortion_sweep(
    model,
    score_fn: Callable[[np.ndarray], np.ndarray],
    configs: Sequence[Transform],
    seeds: np.ndarray,
    labels: np.ndarray,
    clean_scores: np.ndarray,
    fpr: float = 0.059,
    detector_name: str = "detector",
) -> DistortionSweep:
    """Sweep ``configs`` over ``seeds`` at a matched clean-data FPR.

    ``score_fn`` maps an image batch to anomaly scores (higher = more
    anomalous); the threshold is pinned so that at most ``fpr`` of
    ``clean_scores`` exceed it, as the paper does for Figure 4.
    """
    if len(seeds) != len(labels):
        raise ValueError("seeds and labels must have equal length")
    threshold = threshold_at_fpr(np.asarray(clean_scores, dtype=np.float64), fpr)
    levels = []
    for config in configs:
        transformed = config(seeds)
        predictions = model.predict(transformed)
        scc_mask = predictions != labels
        scores = np.asarray(score_fn(transformed), dtype=np.float64)

        def rate(mask: np.ndarray) -> float | None:
            if not mask.any():
                return None
            return true_positive_rate(scores[mask], threshold)

        levels.append(
            SweepLevel(
                config=config,
                success_rate=float(scc_mask.mean()),
                scc_count=int(scc_mask.sum()),
                fcc_count=int((~scc_mask).sum()),
                detection_scc=rate(scc_mask),
                detection_fcc=rate(~scc_mask),
            )
        )
    return DistortionSweep(
        detector_name=detector_name, fpr=fpr, threshold=threshold, levels=levels
    )


def early_warning_correlation(sweep: DistortionSweep) -> float:
    """Correlation between success rate and FCC detection across levels.

    The paper's Section IV-D6 desideratum: FCC detection should grow
    *proportionally to the success rate* — awareness of imminent danger.
    Returns the Pearson correlation over levels where FCCs exist (``nan``
    when fewer than two such levels).
    """
    pairs = [
        (level.success_rate, level.detection_fcc)
        for level in sweep.levels
        if level.detection_fcc is not None
    ]
    if len(pairs) < 2:
        return float("nan")
    success, detection = map(np.asarray, zip(*pairs))
    if success.std() == 0 or detection.std() == 0:
        return float("nan")
    return float(np.corrcoef(success, detection)[0, 1])
