"""Metamorphic corner-case generation (paper Sections III-A and IV-B).

Seed images that the classifier handles correctly are pushed through
naturally occurring transformations with grid-searched strength until the
model's accuracy collapses — simulating the unexpected working-condition
changes (illumination, camera pose, object movement) that produce
real-world corner cases.
"""

from repro.corner.search_space import (
    SEARCH_SPACES,
    TransformationSpace,
    spaces_for_dataset,
)
from repro.corner.search import SearchOutcome, grid_search, search_all_transformations
from repro.corner.suite import CornerCaseSuite, TransformationResult, build_corner_case_suite
from repro.corner.sweep import (
    DistortionSweep,
    SweepLevel,
    early_warning_correlation,
    run_distortion_sweep,
)
from repro.corner.coverage import CoverageReport, NeuronCoverage, coverage_gain

__all__ = [
    "SEARCH_SPACES",
    "TransformationSpace",
    "spaces_for_dataset",
    "SearchOutcome",
    "grid_search",
    "search_all_transformations",
    "CornerCaseSuite",
    "TransformationResult",
    "build_corner_case_suite",
    "DistortionSweep",
    "SweepLevel",
    "early_warning_correlation",
    "run_distortion_sweep",
    "CoverageReport",
    "NeuronCoverage",
    "coverage_gain",
]
