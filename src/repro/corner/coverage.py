"""Neuron coverage (DeepXplore, Pei et al. 2017 — the paper's reference [57]).

The DNN-testing literature the paper builds on measures test adequacy by
*neuron coverage*: the fraction of neurons whose activation exceeds a
threshold for at least one input. Corner cases are interesting precisely
because they activate network regions clean data never reaches; this module
quantifies that, linking the runtime-detection view (Deep Validation) to
the testing view (DeepXplore/DeepTest).

Activations are taken at the probe points of a
:class:`~repro.nn.sequential.ProbedSequential`, min-max scaled per neuron
as in DeepXplore.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.sequential import ProbedSequential


@dataclass
class CoverageReport:
    """Coverage state per layer plus the aggregate."""

    layer_names: list[str]
    covered_per_layer: list[int]
    neurons_per_layer: list[int]

    @property
    def total_neurons(self) -> int:
        return sum(self.neurons_per_layer)

    @property
    def total_covered(self) -> int:
        return sum(self.covered_per_layer)

    @property
    def coverage(self) -> float:
        return self.total_covered / self.total_neurons

    def layer_coverage(self) -> dict[str, float]:
        """Per-layer coverage fraction, keyed by probe name."""
        return {
            name: covered / neurons
            for name, covered, neurons in zip(
                self.layer_names, self.covered_per_layer, self.neurons_per_layer
            )
        }


class NeuronCoverage:
    """Tracks threshold neuron coverage across batches of inputs.

    Per DeepXplore, each neuron's activation is min-max scaled *within its
    layer for each input*, and the neuron counts as covered when its scaled
    activation exceeds ``threshold`` for any seen input. Convolutional maps
    are reduced per channel by their spatial mean (DeepXplore's treatment of
    feature maps).
    """

    def __init__(self, model: ProbedSequential, threshold: float = 0.5) -> None:
        if not 0.0 <= threshold < 1.0:
            raise ValueError(f"threshold must be in [0, 1), got {threshold}")
        self.model = model
        self.threshold = threshold
        self._covered: list[np.ndarray] | None = None

    def _neuron_activations(self, images: np.ndarray) -> list[np.ndarray]:
        """Per-layer (N, neurons) activations with conv maps channel-pooled."""
        self.model.eval()
        from repro.autograd.tensor import Tensor, no_grad

        layers: list[list[np.ndarray]] = []
        with no_grad():
            for start in range(0, len(images), 256):
                batch = Tensor(images[start : start + 256].astype(np.float32, copy=False))
                _, probes = self.model.forward_probes(batch)
                for index, probe in enumerate(probes):
                    data = probe.data
                    if data.ndim == 4:
                        data = data.mean(axis=(2, 3))
                    if start == 0:
                        layers.append([data])
                    else:
                        layers[index].append(data)
        return [np.concatenate(chunks, axis=0) for chunks in layers]

    def update(self, images: np.ndarray) -> "NeuronCoverage":
        """Fold a batch of inputs into the coverage state."""
        activations = self._neuron_activations(images)
        if self._covered is None:
            self._covered = [np.zeros(a.shape[1], dtype=bool) for a in activations]
        for covered, layer in zip(self._covered, activations):
            low = layer.min(axis=1, keepdims=True)
            high = layer.max(axis=1, keepdims=True)
            scaled = (layer - low) / np.maximum(high - low, 1e-12)
            covered |= (scaled > self.threshold).any(axis=0)
        return self

    def report(self) -> CoverageReport:
        """Snapshot the coverage state accumulated so far."""
        if self._covered is None:
            raise RuntimeError("no inputs observed yet")
        return CoverageReport(
            layer_names=self.model.probe_names,
            covered_per_layer=[int(c.sum()) for c in self._covered],
            neurons_per_layer=[len(c) for c in self._covered],
        )

    def reset(self) -> None:
        """Forget all observed inputs."""
        self._covered = None


def coverage_gain(
    model: ProbedSequential,
    base_images: np.ndarray,
    extra_images: np.ndarray,
    threshold: float = 0.5,
) -> tuple[CoverageReport, CoverageReport]:
    """Coverage before and after adding ``extra_images`` to ``base_images``.

    The DeepXplore-style question: do the extra inputs (e.g. corner cases)
    exercise neurons the base (clean) inputs never reached?
    """
    tracker = NeuronCoverage(model, threshold=threshold)
    tracker.update(base_images)
    base_report = tracker.report()
    tracker.update(extra_images)
    combined_report = tracker.report()
    return base_report, combined_report
