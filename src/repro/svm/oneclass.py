"""ν-one-class SVM (Schölkopf et al. 2001) with an SMO dual solver.

Dual problem::

    minimise    (1/2) αᵀ Q α          with Q_ij = k(x_i, x_j)
    subject to  0 <= α_i <= 1/(ν n),  Σ α_i = 1

The decision function is ``f(x) = Σ α_i k(x_i, x) − ρ``: non-negative on
the region holding most of the training mass, negative outside. ``ν`` upper
bounds the fraction of training outliers and lower bounds the fraction of
support vectors.

The solver is the standard maximal-violating-pair SMO used by LIBSVM,
specialised to the one-class problem (all labels +1, zero linear term).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.svm.kernels import Kernel, make_kernel
from repro.utils.validation import check_positive


@dataclass
class SMOResult:
    """Raw solver output: dual coefficients, offset, and diagnostics."""

    alpha: np.ndarray
    rho: float
    iterations: int
    converged: bool


def solve_oneclass_smo(
    gram: np.ndarray,
    nu: float,
    tol: float = 1e-4,
    max_iter: int = 20000,
) -> SMOResult:
    """Solve the one-class dual on a precomputed Gram matrix.

    Follows LIBSVM: initialise the first ``floor(ν n)`` coefficients at the
    upper bound ``C = 1/(ν n)`` (plus a fractional remainder), then repeatedly
    optimise the maximal-violating pair until the KKT gap falls below
    ``tol``.
    """
    n = gram.shape[0]
    if gram.shape != (n, n):
        raise ValueError(f"gram must be square, got {gram.shape}")
    if not 0.0 < nu <= 1.0:
        raise ValueError(f"nu must be in (0, 1], got {nu}")

    upper = 1.0 / (nu * n)
    alpha = np.zeros(n)
    budget = 1.0
    for i in range(n):
        alpha[i] = min(upper, budget)
        budget -= alpha[i]
        if budget <= 0:
            break

    gradient = gram @ alpha
    iterations = 0
    converged = False
    eps = 1e-12
    for iterations in range(1, max_iter + 1):
        can_increase = alpha < upper - eps
        can_decrease = alpha > eps
        if not can_increase.any() or not can_decrease.any():
            converged = True
            break
        masked_up = np.where(can_increase, gradient, np.inf)
        masked_down = np.where(can_decrease, gradient, -np.inf)
        i = int(masked_up.argmin())
        j = int(masked_down.argmax())
        gap = gradient[j] - gradient[i]
        if gap <= tol:
            converged = True
            break
        # Optimal unconstrained step along e_i - e_j.
        curvature = gram[i, i] + gram[j, j] - 2.0 * gram[i, j]
        if curvature <= eps:
            step = min(upper - alpha[i], alpha[j])
        else:
            step = min(gap / curvature, upper - alpha[i], alpha[j])
        if step <= eps:
            converged = True
            break
        alpha[i] += step
        alpha[j] -= step
        gradient += step * (gram[:, i] - gram[:, j])

    free = (alpha > eps) & (alpha < upper - eps)
    if free.any():
        rho = float(gradient[free].mean())
    else:
        # No free support vectors: rho sits between the bound groups.
        upper_grads = gradient[alpha >= upper - eps]
        lower_grads = gradient[alpha <= eps]
        hi = float(upper_grads.max()) if len(upper_grads) else float(gradient.min())
        lo = float(lower_grads.min()) if len(lower_grads) else float(gradient.max())
        rho = (hi + lo) / 2.0
    return SMOResult(alpha=alpha, rho=rho, iterations=iterations, converged=converged)


class OneClassSVM:
    """Estimator façade over the SMO solver.

    Parameters
    ----------
    nu:
        Upper bound on the training-outlier fraction (and lower bound on the
        support-vector fraction); the paper's knob for how tightly each
        reference distribution is wrapped.
    kernel:
        ``"rbf"`` (default), ``"linear"``, ``"poly"``, or a
        :class:`~repro.svm.kernels.Kernel` instance.
    gamma:
        RBF/poly bandwidth; defaults to scikit-learn's ``scale`` heuristic.
    """

    def __init__(
        self,
        nu: float = 0.1,
        kernel: str | Kernel = "rbf",
        gamma: float | None = None,
        tol: float = 1e-4,
        max_iter: int = 20000,
    ) -> None:
        if not 0.0 < nu <= 1.0:
            raise ValueError(f"nu must be in (0, 1], got {nu}")
        check_positive("tol", tol)
        self.nu = nu
        self._kernel_spec = kernel
        self.gamma = gamma
        self.tol = tol
        self.max_iter = max_iter
        self.kernel_: Kernel | None = None
        self.support_vectors_: np.ndarray | None = None
        self.dual_coef_: np.ndarray | None = None
        self.rho_: float | None = None
        self.norm_w_: float | None = None
        self.result_: SMOResult | None = None

    # -- fitting ---------------------------------------------------------------

    @classmethod
    def from_solution(
        cls,
        *,
        kernel: Kernel,
        support_vectors: np.ndarray,
        dual_coef: np.ndarray,
        rho: float,
        norm_w: float,
        nu: float = 0.1,
        iterations: int = 0,
        converged: bool = True,
    ) -> "OneClassSVM":
        """Rebuild a fitted estimator from precomputed solution pieces.

        The entry point for the parallel fitting pipeline
        (:mod:`repro.core.fitting`): workers solve the dual in their own
        process and ship back only the support set, offsets, and the fitted
        kernel; this reconstructs an estimator that scores identically to
        one produced by :meth:`fit` on the same data. ``result_.alpha``
        holds only the support-vector duals (the zero entries never leave
        the worker).
        """
        support_vectors = np.asarray(support_vectors, dtype=np.float64)
        dual_coef = np.asarray(dual_coef, dtype=np.float64)
        if support_vectors.ndim != 2:
            raise ValueError(
                f"expected (M, d) support vectors, got shape {support_vectors.shape}"
            )
        if dual_coef.shape != (len(support_vectors),):
            raise ValueError(
                f"dual_coef must have shape ({len(support_vectors)},), "
                f"got {dual_coef.shape}"
            )
        if not isinstance(kernel, Kernel):
            raise TypeError(f"kernel must be a fitted Kernel, got {type(kernel).__name__}")
        svm = cls(nu=nu, kernel=kernel)
        svm.kernel_ = kernel
        svm.support_vectors_ = support_vectors
        svm.dual_coef_ = dual_coef
        svm.rho_ = float(rho)
        svm.norm_w_ = float(norm_w)
        svm.result_ = SMOResult(
            alpha=dual_coef, rho=float(rho), iterations=iterations, converged=converged
        )
        return svm

    def fit(self, features: np.ndarray, gram: np.ndarray | None = None) -> "OneClassSVM":
        """Fit the one-class dual on ``features`` (N, d).

        ``gram`` is a fast path for callers that already hold the kernel
        matrix of ``features`` against itself (the batched engine computes
        Gram blocks for several estimators from one stacked product);
        passing it skips the quadratic kernel evaluation here.
        """
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError(f"expected (N, d) features, got shape {features.shape}")
        if len(features) < 2:
            raise ValueError("one-class SVM needs at least two training points")
        if isinstance(self._kernel_spec, Kernel):
            self.kernel_ = self._kernel_spec
        else:
            self.kernel_ = make_kernel(self._kernel_spec, features, gamma=self.gamma)
        if gram is None:
            gram = self.kernel_(features, features)
        elif gram.shape != (len(features), len(features)):
            raise ValueError(
                f"gram must be ({len(features)}, {len(features)}), got {gram.shape}"
            )
        result = solve_oneclass_smo(gram, self.nu, tol=self.tol, max_iter=self.max_iter)
        support = result.alpha > 1e-12
        self.support_vectors_ = features[support]
        self.dual_coef_ = result.alpha[support]
        self.rho_ = result.rho
        # ||w||^2 = αᵀQα restricted to the support set.
        sub = gram[np.ix_(support, support)]
        self.norm_w_ = float(np.sqrt(max(self.dual_coef_ @ sub @ self.dual_coef_, 1e-12)))
        self.result_ = result
        return self

    def _check_fitted(self) -> None:
        if self.support_vectors_ is None:
            raise RuntimeError("OneClassSVM is not fitted")

    # -- scoring ---------------------------------------------------------------

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """``Σ α_i k(x_i, x) − ρ``: non-negative inside the learned support."""
        self._check_fitted()
        features = np.asarray(features, dtype=np.float64)
        kernel_values = self.kernel_(features, self.support_vectors_)
        return kernel_values @ self.dual_coef_ - self.rho_

    def score_batch(
        self, features: np.ndarray, chunk_size: int | None = None
    ) -> np.ndarray:
        """Signed distances for a large batch, bounded-memory.

        Identical to :meth:`signed_distance` but evaluates the kernel block
        in sample chunks of ``chunk_size`` so the transient
        ``(batch, n_support)`` matrix never exceeds
        ``chunk_size * n_support`` floats — the fast path the validation
        engine uses when a single layer's batch would not fit in memory.
        """
        self._check_fitted()
        features = np.asarray(features, dtype=np.float64)
        if chunk_size is None or len(features) <= chunk_size:
            return self.signed_distance(features)
        out = np.empty(len(features))
        for start in range(0, len(features), chunk_size):
            block = features[start : start + chunk_size]
            out[start : start + chunk_size] = self.signed_distance(block)
        return out

    def signed_distance(self, features: np.ndarray) -> np.ndarray:
        """Signed distance to the supporting hyperplane in kernel space.

        This is ``decision_function / ||w||`` — the quantity the paper's
        discrepancy estimation negates (Eq. 2). Normalising by ``||w||``
        keeps distances comparable across per-layer SVMs fitted on features
        of very different dimensionality.
        """
        return self.decision_function(features) / self.norm_w_

    def predict(self, features: np.ndarray) -> np.ndarray:
        """+1 for inliers, -1 for outliers."""
        return np.where(self.decision_function(features) >= 0.0, 1, -1)
