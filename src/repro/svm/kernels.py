"""Kernel functions for the one-class SVM."""

from __future__ import annotations

import numpy as np


class Kernel:
    """A positive-definite kernel ``k(x, y)`` evaluated on row batches."""

    name: str = "kernel"

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Gram matrix of shape ``(len(a), len(b))``."""
        raise NotImplementedError

    def diag(self, a: np.ndarray) -> np.ndarray:
        """``k(x, x)`` for each row of ``a`` (cheaper than the full Gram)."""
        raise NotImplementedError


class LinearKernel(Kernel):
    """``k(x, y) = x . y``"""

    name = "linear"

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a @ b.T

    def diag(self, a: np.ndarray) -> np.ndarray:
        return np.einsum("ij,ij->i", a, a)


class RBFKernel(Kernel):
    """``k(x, y) = exp(-gamma ||x - y||^2)``"""

    name = "rbf"

    def __init__(self, gamma: float) -> None:
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        self.gamma = gamma

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a_sq = np.einsum("ij,ij->i", a, a)[:, None]
        b_sq = np.einsum("ij,ij->i", b, b)[None, :]
        sq_dist = np.maximum(a_sq + b_sq - 2.0 * (a @ b.T), 0.0)
        return np.exp(-self.gamma * sq_dist)

    def diag(self, a: np.ndarray) -> np.ndarray:
        return np.ones(len(a))


class PolynomialKernel(Kernel):
    """``k(x, y) = (gamma x . y + coef0)^degree``"""

    name = "poly"

    def __init__(self, degree: int = 3, gamma: float = 1.0, coef0: float = 1.0) -> None:
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        self.degree = degree
        self.gamma = gamma
        self.coef0 = coef0

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (self.gamma * (a @ b.T) + self.coef0) ** self.degree

    def diag(self, a: np.ndarray) -> np.ndarray:
        return (self.gamma * np.einsum("ij,ij->i", a, a) + self.coef0) ** self.degree


def scale_gamma(features: np.ndarray) -> float:
    """scikit-learn's ``gamma='scale'`` heuristic: ``1 / (d * var(X))``."""
    variance = float(features.var())
    if variance <= 0:
        variance = 1.0
    return 1.0 / (features.shape[1] * variance)


def make_kernel(name: str, features: np.ndarray, gamma: float | None = None) -> Kernel:
    """Build a kernel by name, inferring RBF gamma from data when omitted."""
    if name == "linear":
        return LinearKernel()
    if name == "rbf":
        return RBFKernel(gamma if gamma is not None else scale_gamma(features))
    if name == "poly":
        return PolynomialKernel(gamma=gamma if gamma is not None else scale_gamma(features))
    raise ValueError(f"unknown kernel {name!r}; expected linear, rbf, or poly")
