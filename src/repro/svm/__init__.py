"""One-class support vector machines (Schölkopf et al. 2001), from scratch.

The paper fits one ν-one-class SVM per (layer, class) pair on the hidden
representations of correctly classified training images, and scores test
inputs by their signed distance to the learned supporting hyperplane. This
package provides the kernels, the SMO dual solver, and the estimator — a
drop-in replacement for the scikit-learn implementation the paper used.
"""

from repro.svm.kernels import Kernel, LinearKernel, PolynomialKernel, RBFKernel, make_kernel
from repro.svm.oneclass import OneClassSVM
from repro.svm.packed import PackedClassSVMs, pack_class_svms
from repro.svm.scaler import StandardScaler

__all__ = [
    "Kernel",
    "LinearKernel",
    "PolynomialKernel",
    "RBFKernel",
    "make_kernel",
    "OneClassSVM",
    "PackedClassSVMs",
    "pack_class_svms",
    "StandardScaler",
]
