"""Per-feature standardisation for hidden representations."""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Standardise features to zero mean, unit variance.

    Hidden representations from different layers live on wildly different
    scales; standardising before kernel evaluation keeps a single RBF gamma
    heuristic meaningful everywhere.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    @classmethod
    def from_stats(cls, mean: np.ndarray, scale: np.ndarray) -> "StandardScaler":
        """Build a fitted scaler from precomputed statistics.

        The fast path for the batched engine: when per-class statistics are
        derived from one pass over a layer's stacked representations, the
        per-class scalers are materialised without re-reading the data.
        """
        scaler = cls()
        mean = np.asarray(mean, dtype=np.float64)
        scale = np.asarray(scale, dtype=np.float64).copy()
        if mean.shape != scale.shape or mean.ndim != 1:
            raise ValueError(
                f"mean and scale must be matching 1-d arrays, got "
                f"{mean.shape} and {scale.shape}"
            )
        scale[scale == 0.0] = 1.0
        scaler.mean_ = mean
        scaler.scale_ = scale
        return scaler

    def fit(self, features: np.ndarray) -> "StandardScaler":
        """Estimate per-feature mean and scale from (N, d) features.

        Mean and variance come from a single fused pass (``E[x^2] - E[x]^2``
        with a non-negativity clamp) rather than separate ``mean``/``std``
        traversals — on the wide flattened conv representations the
        validators see, the second pass over memory is the dominant cost.
        """
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError(f"expected (N, d) features, got shape {features.shape}")
        n = len(features)
        total = features.sum(axis=0)
        total_sq = np.einsum("ij,ij->j", features, features)
        mean = total / n
        variance = np.maximum(total_sq / n - mean**2, 0.0)
        scale = np.sqrt(variance)
        scale[scale == 0.0] = 1.0
        self.mean_ = mean
        self.scale_ = scale
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Standardise features with the fitted statistics."""
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        return (np.asarray(features, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(features).transform(features)
