"""Per-feature standardisation for hidden representations."""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Standardise features to zero mean, unit variance.

    Hidden representations from different layers live on wildly different
    scales; standardising before kernel evaluation keeps a single RBF gamma
    heuristic meaningful everywhere.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        """Estimate per-feature mean and scale from (N, d) features."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError(f"expected (N, d) features, got shape {features.shape}")
        self.mean_ = features.mean(axis=0)
        scale = features.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Standardise features with the fitted statistics."""
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        return (np.asarray(features, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(features).transform(features)
