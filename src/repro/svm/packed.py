"""Packed multi-SVM scoring: every per-class SVM of a layer in one GEMM.

The paper's detector keeps one one-class SVM per (layer, predicted class);
scoring a batch through the naive path costs one kernel evaluation per
class group — and in the runtime-monitor case (batch size 1) one full
Python round-trip per image. This module folds a whole layer's per-class
SVMs into stacked coefficient matrices so that scoring a minibatch against
*every* class is a single matrix product plus segment-wise reductions,
after which the per-sample discrepancy is a gather at the predicted label.

The algebraic trick that makes one GEMM possible despite *per-class*
standardisation: each class scores queries as ``k((x - m_c) / s_c, v)``
against support vectors ``v`` living in that class's scaled space. Mapping
each support vector back to raw input space, ``u = m_c + s_c * v``, turns

* the RBF's squared distance into a diagonally-weighted distance
  ``sum_d (x_d - u_d)^2 / s_{c,d}^2``, which expands into two matrix
  products shared across all classes; and
* the linear/polynomial inner product into ``x . (v / s_c) - m_c . (v / s_c)``,
  a single matrix product against precomputed rows plus a per-row offset.

Both forms are exact — packed scores match the per-sample reference path
to floating-point reassociation error (the differential test harness pins
this at 1e-8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.svm.kernels import Kernel, LinearKernel, PolynomialKernel, RBFKernel
from repro.svm.oneclass import OneClassSVM
from repro.svm.scaler import StandardScaler


def _gemm_seconds():
    return obs.histogram(
        "svm_packed_gemm_seconds",
        help="Stacked kernel-evaluation (augmented GEMM) wall time per chunk",
    )


@dataclass
class PackedClassSVMs:
    """All per-class one-class SVMs of one layer, stacked for batch scoring.

    ``M`` is the total support-vector count across classes and ``C`` the
    number of classes. Segment ``c`` of the stacked rows (delimited by
    ``seg_starts``) holds class ``c``'s support vectors.
    """

    classes: np.ndarray        # (C,) sorted class ids
    kernel_name: str           # "rbf" | "linear" | "poly"
    seg_starts: np.ndarray     # (C,) first stacked row of each class segment
    seg_class: np.ndarray      # (M,) class position of each stacked row
    coef_rows: np.ndarray      # (M, d+1) kernel-specific row matrix, see below
    dual: np.ndarray           # (M,) dual coefficients alpha
    rho: np.ndarray            # (C,) offsets
    norm_w: np.ndarray         # (C,) hyperplane norms
    gamma: np.ndarray          # (C,) per-class kernel gamma (1.0 for linear)
    degree: int                # poly degree (1 elsewhere)
    coef0: float               # poly bias (0.0 elsewhere)
    # RBF only: gamma-scaled diagonal metric gamma_c / s_c^2, shape (C, d).
    metric: np.ndarray | None

    @property
    def n_support(self) -> int:
        return len(self.dual)

    def class_positions(self, predicted: np.ndarray) -> np.ndarray:
        """Map predicted class ids to segment positions, validating coverage."""
        predicted = np.asarray(predicted)
        positions = np.searchsorted(self.classes, predicted)
        positions = np.minimum(positions, len(self.classes) - 1)
        bad = self.classes[positions] != predicted
        if bad.any():
            missing = int(np.asarray(predicted)[bad][0])
            raise KeyError(f"no reference SVM for predicted class {missing}")
        return positions

    # -- scoring ---------------------------------------------------------------

    def decision_matrix(self, features: np.ndarray) -> np.ndarray:
        """Decision values of every sample against every class, shape (B, C).

        One GEMM against the stacked coefficient rows, an elementwise kernel
        map, and a ``reduceat`` over class segments. All affine terms — the
        ``-2 gamma x . (w * u)`` cross term, per-class constants, and the
        linear/poly inner-product offsets — are pre-folded into an
        augmented ``[x, 1]`` GEMM, and every subsequent operation mutates
        the (B, M) block in place: at production batch sizes the block is
        megabytes, and each avoided temporary is a full pass over memory.
        """
        features = np.asarray(features, dtype=np.float64)
        with obs.timed(_gemm_seconds()):
            return self._decision_matrix(features)

    def _decision_matrix(self, features: np.ndarray) -> np.ndarray:
        augmented = np.empty((len(features), features.shape[1] + 1))
        augmented[:, :-1] = features
        augmented[:, -1] = 1.0
        block = augmented @ self.coef_rows.T                # (B, M)
        if self.kernel_name == "rbf":
            # block now holds 2 gamma x.(w*u) - gamma u.(w*u); subtracting the
            # gathered gamma x.(w*x) completes -gamma * sq_dist per class.
            quad = (features * features) @ self.metric.T    # (B, C)
            block -= quad[:, self.seg_class]
            np.minimum(block, 0.0, out=block)               # sq_dist >= 0 clamp
            np.exp(block, out=block)
        elif self.kernel_name == "poly":
            # block holds gamma_c * (x_hat . v); finish (g i + coef0)^degree.
            block += self.coef0
            block **= self.degree
        block *= self.dual[None, :]
        decision = np.add.reduceat(block, self.seg_starts, axis=1)
        decision -= self.rho[None, :]
        return decision

    def signed_distance_matrix(self, features: np.ndarray) -> np.ndarray:
        """Signed hyperplane distances of every sample against every class."""
        return self.decision_matrix(features) / self.norm_w[None, :]

    def discrepancy(
        self,
        features: np.ndarray,
        predicted: np.ndarray,
        chunk_size: int | None = None,
    ) -> np.ndarray:
        """Per-sample discrepancy ``-t^{y'}`` gathered at the predicted class.

        ``chunk_size`` bounds the (chunk, M) kernel block held in memory;
        ``None`` scores the whole batch in one shot.
        """
        features = np.asarray(features, dtype=np.float64)
        predicted = np.asarray(predicted)
        if len(features) != len(predicted):
            raise ValueError("features and predicted must have equal length")
        if len(features) == 0:
            # Fully-quarantined serving windows score zero samples; skip
            # the GEMM machinery rather than stressing its edge cases.
            return np.empty(0)
        positions = self.class_positions(predicted)
        out = np.empty(len(features))
        step = len(features) if chunk_size is None else max(1, chunk_size)
        for start in range(0, len(features), step):
            stop = start + step
            distances = self.signed_distance_matrix(features[start:stop])
            out[start:stop] = -distances[
                np.arange(len(distances)), positions[start:stop]
            ]
        return out


def _kernel_params(kernel: Kernel) -> tuple[str, float, int, float]:
    """(name, gamma, degree, coef0) of a packable kernel, else ValueError."""
    if isinstance(kernel, RBFKernel):
        return "rbf", kernel.gamma, 1, 0.0
    if isinstance(kernel, LinearKernel):
        return "linear", 1.0, 1, 0.0
    if isinstance(kernel, PolynomialKernel):
        return "poly", kernel.gamma, kernel.degree, kernel.coef0
    raise ValueError(f"cannot pack kernel of type {type(kernel).__name__}")


def pack_class_svms(
    svms: dict[int, OneClassSVM],
    scalers: dict[int, StandardScaler] | None = None,
) -> PackedClassSVMs:
    """Stack fitted per-class SVMs (and their scalers) into one scorer.

    Raises ``ValueError`` when the SVMs cannot be packed: no classes, an
    unfitted SVM, a custom kernel type, or polynomial kernels whose
    degree/coef0 disagree across classes (per-class ``gamma`` is fine).
    """
    if not svms:
        raise ValueError("cannot pack an empty SVM collection")
    classes = np.array(sorted(svms), dtype=np.int64)
    scalers = scalers or {}

    names, gammas, degrees, coef0s = [], [], [], []
    for klass in classes:
        svm = svms[int(klass)]
        if svm.support_vectors_ is None or svm.kernel_ is None:
            raise ValueError(f"SVM for class {int(klass)} is not fitted")
        name, gamma, degree, coef0 = _kernel_params(svm.kernel_)
        names.append(name)
        gammas.append(gamma)
        degrees.append(degree)
        coef0s.append(coef0)
    if len(set(names)) != 1:
        raise ValueError(f"mixed kernel types cannot be packed: {sorted(set(names))}")
    kernel_name = names[0]
    if kernel_name == "poly" and (len(set(degrees)) != 1 or len(set(coef0s)) != 1):
        raise ValueError("poly kernels must share degree and coef0 to be packed")

    dim = svms[int(classes[0])].support_vectors_.shape[1]
    coef_rows, duals, seg_class = [], [], []
    seg_starts = np.empty(len(classes), dtype=np.intp)
    rho = np.empty(len(classes))
    norm_w = np.empty(len(classes))
    metric = np.empty((len(classes), dim)) if kernel_name == "rbf" else None

    offset = 0
    for position, klass in enumerate(classes):
        svm = svms[int(klass)]
        vectors = svm.support_vectors_
        if len(vectors) == 0:
            # reduceat cannot express an empty segment.
            raise ValueError(f"SVM for class {int(klass)} has no support vectors")
        scaler = scalers.get(int(klass))
        if scaler is not None and scaler.mean_ is not None:
            mean, scale = scaler.mean_, scaler.scale_
        else:
            mean = np.zeros(dim)
            scale = np.ones(dim)
        gamma = gammas[position]
        rows = np.empty((len(vectors), dim + 1))
        if kernel_name == "rbf":
            # -gamma * sq_dist decomposes into GEMM-foldable pieces:
            #   2 gamma x.(w*u)  -  gamma u.(w*u)  -  gamma x.(w*x)
            # with u = m + s*v (raw-space SV) and w = 1/s^2. The first two
            # terms become the augmented rows here; the last is the
            # per-class quadratic gathered at scoring time (``metric``).
            weights = gamma / scale**2
            raw = mean[None, :] + scale[None, :] * vectors
            rows[:, :-1] = 2.0 * weights[None, :] * raw
            rows[:, -1] = -np.einsum("md,d,md->m", raw, weights, raw)
            metric[position] = weights
        else:
            # gamma_c * (x_hat . v) = x . (g v/s) - g m.(v/s), one GEMM row.
            scaled = vectors / scale[None, :]
            rows[:, :-1] = gamma * scaled
            rows[:, -1] = -gamma * (scaled @ mean)
        coef_rows.append(rows)
        duals.append(svm.dual_coef_)
        seg_starts[position] = offset
        seg_class.append(np.full(len(vectors), position, dtype=np.intp))
        rho[position] = svm.rho_
        norm_w[position] = svm.norm_w_
        offset += len(vectors)

    return PackedClassSVMs(
        classes=classes,
        kernel_name=kernel_name,
        seg_starts=seg_starts,
        seg_class=np.concatenate(seg_class),
        coef_rows=np.concatenate(coef_rows, axis=0),
        dual=np.concatenate(duals),
        rho=rho,
        norm_w=norm_w,
        gamma=np.asarray(gammas, dtype=np.float64),
        degree=degrees[0],
        coef0=coef0s[0],
        metric=metric,
    )
