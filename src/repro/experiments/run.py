"""Command-line runner for the experiment harness.

Usage::

    python -m repro.experiments.run --experiment table6 --dataset synth-mnist
    python -m repro.experiments.run --all --profile bench

Every completed experiment's rendered report is journaled (crash-safely,
under the checkpoint store), so a run killed at experiment 7/10 loses
nothing: rerunning with ``--resume`` replays the journaled reports and
continues from the first experiment that never finished. The in-flight
artifact builds (classifier training, validator fitting) checkpoint
themselves independently and resume bit-identically — see
``docs/checkpointing.md``.
"""

from __future__ import annotations

import argparse

from repro.data.datasets import DATASET_NAMES
from repro.experiments import (
    run_figure2,
    run_figure3,
    run_figure4,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
    run_table8,
)

_PER_DATASET = {
    "table5": run_table5,
    "table6": run_table6,
    "table7": run_table7,
    "figure2": run_figure2,
    "figure3": run_figure3,
}

def _run_extension_studies(profile: str, seed: int):
    """The beyond-paper studies, bundled for the CLI."""
    from repro.experiments.context import get_context
    from repro.experiments.extensions import (
        run_tradeoff_study,
        run_weighting_study,
    )
    from repro.utils.tables import format_table

    class _Bundle:
        def render(self) -> str:
            mnist = get_context("synth-mnist", profile, seed)
            svhn = get_context("synth-svhn", profile, seed)
            parts = [
                run_weighting_study(svhn).render(),
                run_tradeoff_study(mnist).render(),
            ]
            return "\n\n".join(parts)

    return _Bundle()


_GLOBAL = {
    "table2": lambda profile, seed: run_table2(profile, seed),
    "table3": lambda profile, seed: run_table3(profile, seed),
    "table4": lambda profile, seed: run_table4(),
    "table8": lambda profile, seed: run_table8("synth-mnist", profile, seed),
    "figure4": lambda profile, seed: run_figure4("synth-mnist", profile, seed),
    "extensions": _run_extension_studies,
}

EXPERIMENTS = sorted(list(_PER_DATASET) + list(_GLOBAL))


def run_experiment(name: str, dataset: str | None, profile: str, seed: int) -> str:
    """Run one experiment and return its rendered report."""
    if name in _GLOBAL:
        return _GLOBAL[name](profile, seed).render()
    if name in _PER_DATASET:
        datasets = [dataset] if dataset else list(DATASET_NAMES)
        return "\n\n".join(
            _PER_DATASET[name](ds, profile, seed).render() for ds in datasets
        )
    raise ValueError(f"unknown experiment {name!r}; available: {EXPERIMENTS}")


def _run_journal(checkpoint_dir: str | None, dataset: str | None, profile: str, seed: int):
    """The per-run journal of completed experiment reports."""
    from repro.core.checkpoint import CheckpointStore, default_checkpoint_store

    store = (
        CheckpointStore(checkpoint_dir)
        if checkpoint_dir is not None
        else default_checkpoint_store()
    )
    scope = dataset if dataset is not None else "all"
    return store.journal(f"run-{profile}-{scope}-seed{seed}")


def main(argv: list[str] | None = None) -> None:
    """CLI entry point; see the module docstring for usage."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--experiment", choices=EXPERIMENTS, help="which table/figure to run")
    parser.add_argument("--dataset", choices=DATASET_NAMES, default=None)
    parser.add_argument("--profile", default="tiny", choices=("tiny", "bench"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--resume",
        action="store_true",
        help="replay experiments already completed by an interrupted run of "
        "the same profile/dataset/seed, then continue with the rest",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="checkpoint store root (default: $REPRO_CHECKPOINT_DIR or "
        ".checkpoints/ under the artifact cache)",
    )
    args = parser.parse_args(argv)

    names = EXPERIMENTS if args.all else [args.experiment]
    if names == [None]:
        parser.error("provide --experiment or --all")
    journal = _run_journal(args.checkpoint_dir, args.dataset, args.profile, args.seed)
    completed: dict[str, str] = {}
    if args.resume:
        completed = dict(journal.replay())
    else:
        journal.clear()  # a fresh run must not inherit a stale journal
    for name in names:
        if name in completed:
            output = completed[name]
        else:
            output = run_experiment(name, args.dataset, args.profile, args.seed)
            journal.append((name, output))
        print(output)
        print()


if __name__ == "__main__":
    main()
