"""Command-line runner for the experiment harness.

Usage::

    python -m repro.experiments.run --experiment table6 --dataset synth-mnist
    python -m repro.experiments.run --all --profile bench
"""

from __future__ import annotations

import argparse

from repro.data.datasets import DATASET_NAMES
from repro.experiments import (
    run_figure2,
    run_figure3,
    run_figure4,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
    run_table8,
)

_PER_DATASET = {
    "table5": run_table5,
    "table6": run_table6,
    "table7": run_table7,
    "figure2": run_figure2,
    "figure3": run_figure3,
}

def _run_extension_studies(profile: str, seed: int):
    """The beyond-paper studies, bundled for the CLI."""
    from repro.experiments.context import get_context
    from repro.experiments.extensions import (
        run_tradeoff_study,
        run_weighting_study,
    )
    from repro.utils.tables import format_table

    class _Bundle:
        def render(self) -> str:
            mnist = get_context("synth-mnist", profile, seed)
            svhn = get_context("synth-svhn", profile, seed)
            parts = [
                run_weighting_study(svhn).render(),
                run_tradeoff_study(mnist).render(),
            ]
            return "\n\n".join(parts)

    return _Bundle()


_GLOBAL = {
    "table2": lambda profile, seed: run_table2(profile, seed),
    "table3": lambda profile, seed: run_table3(profile, seed),
    "table4": lambda profile, seed: run_table4(),
    "table8": lambda profile, seed: run_table8("synth-mnist", profile, seed),
    "figure4": lambda profile, seed: run_figure4("synth-mnist", profile, seed),
    "extensions": _run_extension_studies,
}

EXPERIMENTS = sorted(list(_PER_DATASET) + list(_GLOBAL))


def run_experiment(name: str, dataset: str | None, profile: str, seed: int) -> str:
    """Run one experiment and return its rendered report."""
    if name in _GLOBAL:
        return _GLOBAL[name](profile, seed).render()
    if name in _PER_DATASET:
        datasets = [dataset] if dataset else list(DATASET_NAMES)
        return "\n\n".join(
            _PER_DATASET[name](ds, profile, seed).render() for ds in datasets
        )
    raise ValueError(f"unknown experiment {name!r}; available: {EXPERIMENTS}")


def main(argv: list[str] | None = None) -> None:
    """CLI entry point; see the module docstring for usage."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--experiment", choices=EXPERIMENTS, help="which table/figure to run")
    parser.add_argument("--dataset", choices=DATASET_NAMES, default=None)
    parser.add_argument("--profile", default="tiny", choices=("tiny", "bench"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--all", action="store_true", help="run every experiment")
    args = parser.parse_args(argv)

    names = EXPERIMENTS if args.all else [args.experiment]
    if names == [None]:
        parser.error("provide --experiment or --all")
    for name in names:
        print(run_experiment(name, args.dataset, args.profile, args.seed))
        print()


if __name__ == "__main__":
    main()
