"""First-class runners for the beyond-paper extension studies.

Each function mirrors one extension benchmark but lives in the library so
downstream users can run the studies on their own models and datasets.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro.core.selection import SelectionStep, greedy_layer_selection
from repro.core.validator import DeepValidator, ValidatorConfig
from repro.core.weighting import (
    fit_auc_greedy_weights,
    fit_logistic_weights,
    weighted_auc,
)
from repro.experiments.context import ExperimentContext
from repro.metrics.roc import roc_auc_score
from repro.nn.augment import Augmenter, augmented_retraining
from repro.utils.tables import format_table


# -- weighted joint ---------------------------------------------------------------


@dataclass
class WeightingStudy:
    """Out-of-sample comparison of joint-combination weightings."""

    uniform_auc: float
    logistic_auc: float
    greedy_auc: float
    logistic_weights: np.ndarray
    greedy_weights: np.ndarray

    def render(self) -> str:
        """Render the weighting comparison as a text table."""
        return format_table(
            ["Joint combination", "Held-out overall ROC-AUC"],
            [
                ["uniform sum (paper Eq. 3)", self.uniform_auc],
                ["logistic weights", self.logistic_auc],
                ["greedy-AUC weights", self.greedy_auc],
            ],
            title="Learned layer weighting",
        )


def run_weighting_study(context: ExperimentContext) -> WeightingStudy:
    """Fit weights on half the evaluation material, score on the rest."""
    scc, _ = context.suite.all_scc_images()
    _, clean = context.engine.discrepancies(context.clean_images)
    _, corner = context.engine.discrepancies(scc)
    half_c, half_k = len(clean) // 2, len(corner) // 2
    calib = (clean[:half_c], corner[:half_k])
    evalu = (clean[half_c:], corner[half_k:])

    layers = clean.shape[1]
    logistic = fit_logistic_weights(*calib)
    greedy = fit_auc_greedy_weights(*calib)
    return WeightingStudy(
        uniform_auc=weighted_auc(*evalu, np.ones(layers)),
        logistic_auc=weighted_auc(*evalu, logistic),
        greedy_auc=weighted_auc(*evalu, greedy),
        logistic_weights=logistic,
        greedy_weights=greedy,
    )


# -- efficiency trade-off ------------------------------------------------------------


@dataclass
class TradeoffStudy:
    """The dependability/efficiency curve from greedy validator selection."""

    layer_names: list[str]
    curve: list[SelectionStep]

    def render(self) -> str:
        """Render the trade-off curve as a text table."""
        rows = [
            [len(step.layers),
             ", ".join(self.layer_names[i] for i in step.layers),
             step.auc]
            for step in self.curve
        ]
        return format_table(
            ["#Validators", "Layers", "Overall ROC-AUC"],
            rows,
            title="Dependability vs efficiency trade-off",
        )


def run_tradeoff_study(context: ExperimentContext) -> TradeoffStudy:
    """Greedy validator-selection curve for one context."""
    scc, _ = context.suite.all_scc_images()
    _, clean = context.engine.discrepancies(context.clean_images)
    _, corner = context.engine.discrepancies(scc)
    return TradeoffStudy(
        layer_names=context.validated_layer_names(),
        curve=greedy_layer_selection(clean, corner),
    )


# -- augmentation countermeasure -------------------------------------------------------


@dataclass
class AugmentationStudy:
    """Effect of augmented retraining per corner-case family."""

    success_before: dict[str, float]
    success_after: dict[str, float]
    residual_auc: float
    clean_accuracy_after: float
    rows: list[list] = field(default_factory=list)

    def render(self) -> str:
        """Render the before/after success table plus summary lines."""
        rows = [
            [name, self.success_before[name], self.success_after[name]]
            for name in sorted(self.success_before)
        ]
        table = format_table(
            ["Transformation", "Success before", "Success after"],
            rows,
            title="Augmented retraining (the paper's countermeasure)",
        )
        return (
            f"{table}\n"
            f"clean accuracy after retraining: {self.clean_accuracy_after:.4f}\n"
            f"Deep Validation AUC on residual SCCs: {self.residual_auc:.4f}"
        )


def run_augmentation_study(
    context: ExperimentContext,
    epochs: int = 4,
    seed: int = 5,
) -> AugmentationStudy:
    """Harden a copy of the classifier with augmentation and re-measure."""
    model = copy.deepcopy(context.model)
    dataset = context.dataset
    suite = context.suite

    def success_rates(m) -> dict[str, float]:
        return {
            name: float(
                (m.predict(suite.result(name).images) != suite.result(name).seed_labels).mean()
            )
            for name in suite.viable_transformations
        }

    before = success_rates(model)
    augmented_retraining(
        model, dataset.train_images, dataset.train_labels,
        epochs=epochs, augmenter=Augmenter(rng=seed), rng=seed,
    )
    after = success_rates(model)
    clean_accuracy = float(
        (model.predict(dataset.test_images) == dataset.test_labels).mean()
    )

    validator = DeepValidator(model, ValidatorConfig(nu=0.1, max_per_class=100))
    validator.fit(dataset.train_images, dataset.train_labels)
    clean_scores = validator.engine().joint_discrepancy(context.clean_images)
    residual = []
    for name in suite.viable_transformations:
        result = suite.result(name)
        still_fooled = model.predict(result.images) != result.seed_labels
        if still_fooled.any():
            residual.append(validator.engine().joint_discrepancy(result.images[still_fooled]))
    residual_scores = np.concatenate(residual) if residual else np.empty(0)
    if len(residual_scores):
        labels = np.concatenate(
            [np.zeros(len(clean_scores)), np.ones(len(residual_scores))]
        )
        residual_auc = float(
            roc_auc_score(labels, np.concatenate([clean_scores, residual_scores]))
        )
    else:
        residual_auc = float("nan")
    return AugmentationStudy(
        success_before=before,
        success_after=after,
        residual_auc=residual_auc,
        clean_accuracy_after=clean_accuracy,
    )
