"""Table II — the SVHN model architecture."""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.context import get_context
from repro.utils.tables import format_table
from repro.zoo.recipes import architecture_summary


@dataclass
class Table2Result:
    rows: list[tuple[str, str]]

    def render(self) -> str:
        """Render the architecture listing as a text table."""
        return format_table(
            ["Stage", "Layer composition"],
            self.rows,
            title="Table II — model architecture for synth-SVHN",
        )


def run_table2(profile: str = "tiny", seed: int = 0) -> Table2Result:
    """Print the layer listing of the trained SVHN-like classifier."""
    context = get_context("synth-svhn", profile, seed)
    return Table2Result(rows=architecture_summary(context.model))
