"""Shared, cached experiment context.

Everything expensive an experiment needs — the trained classifier, the
corner-case suite, the fitted Deep Validator, and a matched clean evaluation
sample — is built once per (dataset, profile, seed) and cached on disk, so
tests, benchmarks, and examples all reuse the same artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.checkpoint import CheckpointStore
from repro.core.fitting import default_fit_jobs
from repro.core.validator import DeepValidator, ValidatorConfig
from repro.corner.suite import CornerCaseSuite, build_corner_case_suite
from repro.utils.cache import ArtifactCache, default_cache
from repro.utils.rng import new_rng
from repro.zoo.recipes import TrainedClassifier, get_trained_classifier

#: Number of rear layers validated on the DenseNet (paper Section IV-C).
DENSENET_REAR_LAYERS = 6

#: Per-profile corner-search scale.
_SUITE_PARAMS = {
    "tiny": {"seed_count": 120, "scan_seeds": 60},
    "bench": {"seed_count": 200, "scan_seeds": 100},
}

_VALIDATOR_PARAMS = {
    "tiny": {"nu": 0.1, "max_per_class": 120},
    "bench": {"nu": 0.1, "max_per_class": 200},
}


def rear_layer_indices(probe_count: int, count: int = DENSENET_REAR_LAYERS) -> list[int]:
    """Indices of the last ``count`` probeable layers."""
    count = min(count, probe_count)
    return list(range(probe_count - count, probe_count))


@dataclass
class ExperimentContext:
    """All shared artifacts for one dataset/profile pair."""

    dataset_name: str
    profile: str
    classifier: TrainedClassifier
    suite: CornerCaseSuite
    validator: DeepValidator
    clean_images: np.ndarray
    clean_labels: np.ndarray

    @property
    def model(self):
        return self.classifier.model

    @property
    def engine(self):
        """Batched scoring engine over the fitted validator (cached there).

        Every experiment table/figure scores through this rather than the
        per-sample reference path; contexts restored from old artifact
        caches build the engine lazily on first access.
        """
        return self.validator.engine()

    @property
    def dataset(self):
        return self.classifier.dataset

    def validated_layer_names(self) -> list[str]:
        """Names of the probes the validator covers."""
        names = self.model.probe_names
        return [names[i] for i in self.validator.layer_indices]

    def monitor(self, **kwargs):
        """A fault-tolerant :class:`~repro.core.monitor.RuntimeMonitor`.

        The input guard is pinned to this dataset's per-image shape, so
        malformed traffic is quarantined instead of crashing the forward
        pass; breaker tuning and callbacks pass through via ``kwargs``.
        A fresh monitor is built per call — health counters and breaker
        state belong to the caller, not the cached context.
        """
        from repro.core.monitor import RuntimeMonitor
        from repro.core.resilience import InputGuard

        kwargs.setdefault(
            "guard",
            InputGuard(expected_shape=self.classifier.dataset.train_images.shape[1:]),
        )
        return RuntimeMonitor(self.validator, **kwargs)


def _build_context(
    dataset_name: str, profile: str, seed: int, cache: ArtifactCache
) -> ExperimentContext:
    """Build the context crash-safely.

    The two long stages — classifier training and Algorithm 1 fitting —
    checkpoint under ``<cache root>/.checkpoints/``: training snapshots
    every epoch, fitting journals every completed (layer, class) solve.
    A build killed partway through resumes from those on the next call
    and, because resume is bit-identical, yields exactly the artifacts of
    an uninterrupted build. Once the finished context lands in the
    artifact cache, its intermediate checkpoint state is discarded.
    """
    with obs.span("context.build", dataset=dataset_name, profile=profile):
        checkpoints = CheckpointStore(cache.root / ".checkpoints")
        with obs.span("context.train_classifier"):
            classifier = get_trained_classifier(
                dataset_name, profile, seed=seed, checkpoints=checkpoints
            )
        model = classifier.model
        dataset = classifier.dataset
        suite_params = _SUITE_PARAMS[profile]
        with obs.span("context.corner_suite"):
            suite = build_corner_case_suite(
                model, dataset, rng=seed, **suite_params
            )

        probe_count = len(model.probe_names)
        layers = None
        if dataset_name == "synth-cifar":
            # The paper validates only the rear layers of its DenseNet (IV-C).
            layers = rear_layer_indices(probe_count)
        # Parallel fitting is bit-identical to serial (the determinism suite
        # pins this), so the worker count does not belong in the cache key.
        config = ValidatorConfig(
            layers=layers, seed=seed, n_jobs=default_fit_jobs(),
            **_VALIDATOR_PARAMS[profile],
        )
        validator = DeepValidator(model, config)
        journal = checkpoints.journal(f"fit-{dataset_name}-{profile}-seed{seed}")
        with obs.span("context.fit_validator"):
            validator.fit(dataset.train_images, dataset.train_labels, journal=journal)
        journal.clear()  # the fitted validator lands in the artifact cache

    # Clean evaluation sample, disjoint from the corner-case seeds where
    # possible: the paper samples as many clean test images as corner cases.
    rng = new_rng(seed + 17)
    count = min(len(dataset.test_images), suite.total_corner_cases())
    chosen = rng.choice(len(dataset.test_images), size=count, replace=False)
    return ExperimentContext(
        dataset_name=dataset_name,
        profile=profile,
        classifier=classifier,
        suite=suite,
        validator=validator,
        clean_images=dataset.test_images[chosen],
        clean_labels=dataset.test_labels[chosen],
    )


def get_context(
    dataset_name: str,
    profile: str = "tiny",
    seed: int = 0,
    cache: ArtifactCache | None = None,
) -> ExperimentContext:
    """Load or build the cached experiment context."""
    cache = cache if cache is not None else default_cache()
    config = {"dataset": dataset_name, "profile": profile, "seed": seed, "kind": "context", "v": 2}
    return cache.get_or_build(
        "context", config, lambda: _build_context(dataset_name, profile, seed, cache)
    )
