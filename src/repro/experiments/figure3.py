"""Figure 3 — discrepancy distributions of legitimate images vs SCCs.

The paper plots 200-bin histograms of the normalised joint discrepancy for
each dataset; legitimate images concentrate at negative values and
successful corner cases at positive values. This runner produces the binned
histogram data plus a text summary (centroids, overlap, suggested epsilon).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.thresholds import centroid_threshold
from repro.experiments.context import get_context


@dataclass
class Figure3Result:
    dataset_name: str
    bin_edges: np.ndarray
    clean_histogram: np.ndarray
    scc_histogram: np.ndarray
    clean_scores: np.ndarray
    scc_scores: np.ndarray
    suggested_epsilon: float

    @property
    def clean_centroid(self) -> float:
        return float(self.clean_scores.mean())

    @property
    def scc_centroid(self) -> float:
        return float(self.scc_scores.mean())

    @property
    def overlap(self) -> float:
        """Histogram overlap coefficient (0 = perfectly separated)."""
        clean = self.clean_histogram / max(self.clean_histogram.sum(), 1)
        scc = self.scc_histogram / max(self.scc_histogram.sum(), 1)
        return float(np.minimum(clean, scc).sum())

    def _sparkline(self, histogram: np.ndarray, width: int = 60) -> str:
        chunks = np.array_split(histogram, width)
        values = np.array([c.sum() for c in chunks], dtype=float)
        peak = values.max() if values.max() > 0 else 1.0
        glyphs = " ▁▂▃▄▅▆▇█"
        return "".join(
            glyphs[int(round(v / peak * (len(glyphs) - 1)))] for v in values
        )

    def render(self) -> str:
        """Render centroids, sparkline histograms, and the suggested epsilon."""
        lines = [
            f"Figure 3 — discrepancy distributions on {self.dataset_name} "
            f"(normalised joint discrepancy, 200 bins)",
            f"legitimate  centroid={self.clean_centroid:+.4f}  "
            f"|{self._sparkline(self.clean_histogram)}|",
            f"SCCs        centroid={self.scc_centroid:+.4f}  "
            f"|{self._sparkline(self.scc_histogram)}|",
            f"overlap coefficient={self.overlap:.4f}  "
            f"suggested epsilon (centroid midpoint)={self.suggested_epsilon:+.4f}",
        ]
        return "\n".join(lines)


def run_figure3(dataset_name: str, profile: str = "tiny", seed: int = 0, bins: int = 200) -> Figure3Result:
    """Compute the Figure 3 discrepancy histograms for one dataset."""
    context = get_context(dataset_name, profile, seed)
    scc, _ = context.suite.all_scc_images()
    clean_scores = context.engine.joint_discrepancy(context.clean_images)
    scc_scores = context.engine.joint_discrepancy(scc)

    # Normalise jointly to [-1, 1] as in the paper's plots.
    scale = max(np.abs(clean_scores).max(), np.abs(scc_scores).max())
    clean_norm = clean_scores / scale
    scc_norm = scc_scores / scale

    edges = np.linspace(-1.0, 1.0, bins + 1)
    clean_hist, _ = np.histogram(clean_norm, bins=edges)
    scc_hist, _ = np.histogram(scc_norm, bins=edges)
    return Figure3Result(
        dataset_name=dataset_name,
        bin_edges=edges,
        clean_histogram=clean_hist,
        scc_histogram=scc_hist,
        clean_scores=clean_norm,
        scc_scores=scc_norm,
        suggested_epsilon=centroid_threshold(clean_norm, scc_norm),
    )
