"""Programmatic full-report generation.

``build_report`` runs every experiment for a profile and assembles a single
Markdown-ish text document — the machinery behind
``python -m repro.experiments.run --all`` and the recorded bench report in
``.artifacts/``.
"""

from __future__ import annotations

from pathlib import Path

from repro.data.datasets import DATASET_NAMES
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5
from repro.experiments.table6 import run_table6
from repro.experiments.table7 import run_table7
from repro.experiments.table8 import run_table8


def build_report(
    profile: str = "tiny",
    seed: int = 0,
    include_attacks: bool = True,
    include_figures: bool = True,
) -> str:
    """Run the full evaluation and return one text report.

    ``include_attacks`` toggles Table VIII (the attack battery is by far
    the most expensive step); ``include_figures`` toggles Figures 2–4.
    """
    sections: list[str] = [
        f"# Deep Validation reproduction report (profile={profile}, seed={seed})",
        run_table2(profile, seed).render(),
        run_table3(profile, seed).render(),
        run_table4().render(),
    ]
    for dataset in DATASET_NAMES:
        sections.append(run_table5(dataset, profile, seed).render())
        sections.append(run_table6(dataset, profile, seed).render())
        sections.append(run_table7(dataset, profile, seed).render())
        if include_figures:
            sections.append(run_figure3(dataset, profile, seed).render())
    if include_attacks:
        sections.append(run_table8("synth-mnist", profile, seed).render())
    if include_figures:
        sections.append(run_figure2("synth-mnist", profile, seed).render())
        sections.append(run_figure4("synth-mnist", profile, seed).render())
    return "\n\n".join(sections) + "\n"


def write_report(path: str | Path, **kwargs) -> Path:
    """Build the report and write it to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(build_report(**kwargs))
    return path
