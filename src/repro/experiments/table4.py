"""Table IV — transformation search spaces."""

from __future__ import annotations

from dataclasses import dataclass

from repro.corner.search_space import SEARCH_SPACES, TRANSFORMATION_ORDER
from repro.utils.tables import format_table

_DESCRIPTIONS = {
    "brightness": ("bias beta", "0.02 through 0.95, step 0.01"),
    "contrast": ("gain alpha", "0 through 5.0, step 0.1"),
    "rotation": ("rotation angle theta", "1 deg through 70 deg, step 1 deg"),
    "shear": ("shear vector (sh, sv)", "(0, 0) through (0.5, 0.5), step (0.1, 0.1)"),
    "scale": ("scale vector (sx, sy)", "(1, 1) through (0.4, 0.4), step (0.1, 0.1)"),
    "translation": ("translation vector (Tx, Ty)", "(0, 0) through (18, 18), step (1, 1)"),
    "complement": ("maximum pixel value 1.0", "-"),
}


@dataclass
class Table4Result:
    rows: list[tuple[str, str, str, int]]

    def render(self) -> str:
        """Render the search-space rows as a text table."""
        return format_table(
            ["Transformation", "Parameter", "Range and Step", "Configs enumerated"],
            self.rows,
            title="Table IV — transformations and search space",
        )


def run_table4() -> Table4Result:
    """Enumerate the Table IV search spaces (static)."""
    rows = []
    for name in TRANSFORMATION_ORDER:
        parameter, search_range = _DESCRIPTIONS[name]
        rows.append((name, parameter, search_range, len(SEARCH_SPACES[name])))
    return Table4Result(rows=rows)
