"""Table VIII — defending against white-box attacks on the MNIST look-alike.

Runs the paper's attack battery (FGSM, BIM, CW∞/CW₂/CW₀ with Next and LL
targets, JSMA with Next and LL), then scores Deep Validation and feature
squeezing on two true-positive conventions: SAEs only, and all AEs
(successful + failed attempts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.attacks.base import AttackResult, least_likely_targets, next_class_targets
from repro.attacks.bim import BIM
from repro.attacks.carlini import CarliniL0, CarliniL2, CarliniLinf
from repro.attacks.fgsm import FGSM
from repro.attacks.jsma import JSMA
from repro.detect.feature_squeezing import FeatureSqueezing
from repro.experiments.context import ExperimentContext, get_context
from repro.metrics.roc import roc_auc_score
from repro.utils.cache import default_cache
from repro.utils.rng import new_rng
from repro.utils.tables import format_table

#: Attack budget per profile: number of seed images attacked.
_SEEDS = {"tiny": 40, "bench": 100}


@dataclass
class AttackCell:
    """One (attack, target-mode) column of Table VIII."""

    attack: str
    target_mode: str
    success_rate: float
    dv_auc_sae: float | None
    fs_auc_sae: float | None
    dv_auc_ae: float
    fs_auc_ae: float

    @property
    def label(self) -> str:
        return f"{self.attack}/{self.target_mode}"


@dataclass
class Table8Result:
    dataset_name: str
    cells: list[AttackCell]
    overall_dv_sae: float = 0.0
    overall_fs_sae: float = 0.0
    overall_dv_ae: float = 0.0
    overall_fs_ae: float = 0.0

    def render(self) -> str:
        """Render the per-attack rows plus the overall row."""
        rows = []
        for cell in self.cells:
            rows.append(
                [
                    cell.label,
                    cell.success_rate,
                    cell.dv_auc_sae,
                    cell.fs_auc_sae,
                    cell.dv_auc_ae,
                    cell.fs_auc_ae,
                ]
            )
        rows.append(
            [
                "OVERALL",
                None,
                self.overall_dv_sae,
                self.overall_fs_sae,
                self.overall_dv_ae,
                self.overall_fs_ae,
            ]
        )
        return format_table(
            [
                "Attack/Target",
                "Success Rate",
                "DeepValidation (SAEs)",
                "FeatureSqueezing (SAEs)",
                "DeepValidation (AEs)",
                "FeatureSqueezing (AEs)",
            ],
            rows,
            title=f"Table VIII — white-box attacks on {self.dataset_name}",
        )


def _attack_battery(context: ExperimentContext, seeds: np.ndarray, labels: np.ndarray):
    """All (name, target-mode, AttackResult) triples of the paper's battery."""
    model = context.model
    next_targets = next_class_targets(labels)
    ll_targets = least_likely_targets(model, seeds)
    battery = [
        ("FGSM", "untargeted", FGSM(model, epsilon=0.3).generate(seeds, labels)),
        ("BIM", "untargeted", BIM(model, epsilon=0.3, alpha=0.05, steps=10).generate(seeds, labels)),
    ]
    for mode, targets in (("Next", next_targets), ("LL", ll_targets)):
        battery.append(
            ("CWinf", mode, CarliniLinf(model, steps=60, outer_steps=3).generate(seeds, labels, targets))
        )
        battery.append(
            ("CW2", mode, CarliniL2(model, steps=100, search_steps=2).generate(seeds, labels, targets))
        )
        battery.append(
            ("CW0", mode, CarliniL0(model, steps=60, rounds=3).generate(seeds, labels, targets))
        )
        battery.append(("JSMA", mode, JSMA(model).generate(seeds, labels, targets)))
    return battery


def _auc(clean_scores: np.ndarray, anomaly_scores: np.ndarray) -> float | None:
    if len(anomaly_scores) == 0:
        return None
    labels = np.concatenate([np.zeros(len(clean_scores)), np.ones(len(anomaly_scores))])
    return float(roc_auc_score(labels, np.concatenate([clean_scores, anomaly_scores])))


def run_table8(
    dataset_name: str = "synth-mnist", profile: str = "tiny", seed: int = 0
) -> Table8Result:
    """Run (or load) the Table VIII white-box attack battery."""
    cache = default_cache()
    config = {"dataset": dataset_name, "profile": profile, "seed": seed, "kind": "table8", "v": 1}
    return cache.get_or_build("table8", config, lambda: _run(dataset_name, profile, seed))


def _run(dataset_name: str, profile: str, seed: int) -> Table8Result:
    context = get_context(dataset_name, profile, seed)
    model = context.model
    dataset = context.dataset

    rng = new_rng(seed + 41)
    predictions = model.predict(dataset.test_images)
    correct = np.flatnonzero(predictions == dataset.test_labels)
    count = min(_SEEDS[profile], len(correct))
    chosen = rng.choice(correct, size=count, replace=False)
    seeds = dataset.test_images[chosen]
    labels = dataset.test_labels[chosen]

    squeezer = FeatureSqueezing(model, greyscale=dataset.channels == 1)
    squeezer.fit(dataset.train_images, dataset.train_labels)
    clean_dv = context.engine.joint_discrepancy(context.clean_images)
    clean_fs = squeezer.score(context.clean_images)

    cells: list[AttackCell] = []
    pooled: dict[str, list[np.ndarray]] = {"dv_sae": [], "fs_sae": [], "dv_ae": [], "fs_ae": []}
    for name, mode, result in _attack_battery(context, seeds, labels):
        dv_scores = context.engine.joint_discrepancy(result.adversarial)
        fs_scores = squeezer.score(result.adversarial)
        success = result.success
        cells.append(
            AttackCell(
                attack=name,
                target_mode=mode,
                success_rate=result.success_rate,
                dv_auc_sae=_auc(clean_dv, dv_scores[success]),
                fs_auc_sae=_auc(clean_fs, fs_scores[success]),
                dv_auc_ae=_auc(clean_dv, dv_scores),
                fs_auc_ae=_auc(clean_fs, fs_scores),
            )
        )
        pooled["dv_sae"].append(dv_scores[success])
        pooled["fs_sae"].append(fs_scores[success])
        pooled["dv_ae"].append(dv_scores)
        pooled["fs_ae"].append(fs_scores)

    return Table8Result(
        dataset_name=dataset_name,
        cells=cells,
        overall_dv_sae=_auc(clean_dv, np.concatenate(pooled["dv_sae"])),
        overall_fs_sae=_auc(clean_fs, np.concatenate(pooled["fs_sae"])),
        overall_dv_ae=_auc(clean_dv, np.concatenate(pooled["dv_ae"])),
        overall_fs_ae=_auc(clean_fs, np.concatenate(pooled["fs_ae"])),
    )
