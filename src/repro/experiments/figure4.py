"""Figure 4 — detection rates under increasing scale distortion (MNIST-like).

Both detectors are pinned to the same false-positive rate on clean data
(the paper uses 0.059); at each scale ratio the detection rate is reported
separately for successful (SCC) and failed (FCC) corner cases, alongside
the corner-case success rate. The paper's shape: Deep Validation holds
~100 % on SCCs and its FCC detection grows with the success rate, while
feature squeezing oscillates and deteriorates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detect.feature_squeezing import FeatureSqueezing
from repro.experiments.context import get_context
from repro.transforms.compose import Scale
from repro.utils.cache import default_cache
from repro.utils.tables import format_table

#: The paper's matched clean-data false positive rate.
MATCHED_FPR = 0.059

#: Scale ratios swept (1.0 = identity, omitted).
DEFAULT_RATIOS = (0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.2, 1.4, 1.6, 1.8, 2.0)


@dataclass
class SweepPoint:
    ratio: float
    success_rate: float
    scc_count: int
    dv_scc_rate: float | None
    dv_fcc_rate: float | None
    fs_scc_rate: float | None
    fs_fcc_rate: float | None


@dataclass
class Figure4Result:
    dataset_name: str
    fpr: float
    points: list[SweepPoint]

    def render(self) -> str:
        """Render the sweep as a text table."""
        rows = [
            [
                p.ratio,
                p.success_rate,
                p.scc_count,
                p.dv_scc_rate,
                p.fs_scc_rate,
                p.dv_fcc_rate,
                p.fs_fcc_rate,
            ]
            for p in self.points
        ]
        return format_table(
            [
                "Scale ratio",
                "Success rate",
                "#SCC",
                "DV det(SCC)",
                "FS det(SCC)",
                "DV det(FCC)",
                "FS det(FCC)",
            ],
            rows,
            title=(
                f"Figure 4 — detection rate vs scale ratio on {self.dataset_name} "
                f"(both detectors at clean FPR {self.fpr})"
            ),
        )


def run_figure4(
    dataset_name: str = "synth-mnist",
    profile: str = "tiny",
    seed: int = 0,
    ratios: tuple[float, ...] = DEFAULT_RATIOS,
    fpr: float = MATCHED_FPR,
) -> Figure4Result:
    """Run (or load) the Figure 4 scale sweep at matched FPR."""
    cache = default_cache()
    config = {
        "dataset": dataset_name, "profile": profile, "seed": seed,
        "ratios": list(ratios), "fpr": fpr, "kind": "figure4", "v": 1,
    }
    return cache.get_or_build(
        "figure4", config, lambda: _run(dataset_name, profile, seed, ratios, fpr)
    )


def _run(
    dataset_name: str, profile: str, seed: int, ratios: tuple[float, ...], fpr: float
) -> Figure4Result:
    from repro.corner.sweep import run_distortion_sweep

    context = get_context(dataset_name, profile, seed)
    model = context.model
    dataset = context.dataset

    squeezer = FeatureSqueezing(model, greyscale=dataset.channels == 1)
    squeezer.fit(dataset.train_images, dataset.train_labels)

    configs = [Scale(ratio, ratio) for ratio in ratios]
    seeds = context.suite.seeds
    labels = context.suite.seed_labels
    # Both detectors pinned to the same clean-data FPR.
    dv_sweep = run_distortion_sweep(
        model, context.engine.joint_discrepancy, configs, seeds, labels,
        clean_scores=context.engine.joint_discrepancy(context.clean_images),
        fpr=fpr, detector_name="deep-validation",
    )
    fs_sweep = run_distortion_sweep(
        model, squeezer.score, configs, seeds, labels,
        clean_scores=squeezer.score(context.clean_images),
        fpr=fpr, detector_name="feature-squeezing",
    )

    points = [
        SweepPoint(
            ratio=ratio,
            success_rate=dv_level.success_rate,
            scc_count=dv_level.scc_count,
            dv_scc_rate=dv_level.detection_scc,
            dv_fcc_rate=dv_level.detection_fcc,
            fs_scc_rate=fs_level.detection_scc,
            fs_fcc_rate=fs_level.detection_fcc,
        )
        for ratio, dv_level, fs_level in zip(ratios, dv_sweep.levels, fs_sweep.levels)
    ]
    return Figure4Result(dataset_name=dataset_name, fpr=fpr, points=points)
