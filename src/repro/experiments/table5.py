"""Table V — success rates and chosen configurations per transformation."""

from __future__ import annotations

from dataclasses import dataclass

from repro.corner.search_space import TRANSFORMATION_ORDER
from repro.experiments.context import get_context
from repro.utils.tables import format_table

_ROW_ORDER = TRANSFORMATION_ORDER + ("combined",)


@dataclass
class Table5Result:
    dataset_name: str
    rows: list[tuple[str, str, object, object]]

    def render(self) -> str:
        """Render the success-rate rows as a text table."""
        return format_table(
            ["Transformation", "Configuration", "Success Rate", "Mean Top-1 Confidence"],
            self.rows,
            title=f"Table V — corner-case success rates on {self.dataset_name}",
        )

    def success_rate(self, transformation: str) -> float | None:
        """Success rate for one transformation row (None when not viable)."""
        for name, _, success, _ in self.rows:
            if name == transformation:
                return success
        raise KeyError(transformation)


def run_table5(dataset_name: str, profile: str = "tiny", seed: int = 0) -> Table5Result:
    """Assemble Table V from the cached corner-case suite."""
    context = get_context(dataset_name, profile, seed)
    outcomes = {o.transformation: o for o in context.suite.outcomes}
    rows = []
    for name in _ROW_ORDER:
        outcome = outcomes.get(name)
        if outcome is None or not outcome.viable:
            rows.append((name, "-", None, None))
            continue
        rows.append(
            (
                name,
                outcome.config.describe(),
                outcome.success_rate,
                outcome.mean_confidence,
            )
        )
    return Table5Result(dataset_name=dataset_name, rows=rows)
