"""Table VI — ROC-AUC of single validators vs the joint Deep Validation.

For each transformation, positives are its successful corner cases (SCCs)
and negatives a matched clean sample (Section IV-D1/2). The table reports
the AUC of every single (per-layer) validator, the best
transformation-specific single validator, and the joint validator of Eq. 3;
the "overall" column pools the SCCs of every transformation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments.context import ExperimentContext, get_context
from repro.metrics.roc import roc_auc_score
from repro.utils.tables import format_table


@dataclass
class Table6Result:
    dataset_name: str
    layer_names: list[str]
    transformations: list[str]
    #: AUC per validated layer per transformation: shape (layers, transforms).
    single_auc: np.ndarray
    #: Overall AUC per validated layer (pooled SCCs).
    single_overall: np.ndarray
    #: Joint-validator AUC per transformation.
    joint_auc: np.ndarray
    joint_overall: float = 0.0
    scc_counts: dict[str, int] = field(default_factory=dict)

    @property
    def best_specific(self) -> np.ndarray:
        """Best transformation-specific single validator per column."""
        return self.single_auc.max(axis=0)

    @property
    def best_single_overall(self) -> float:
        return float(self.single_overall.max())

    def render(self) -> str:
        """Render single/best/joint validator rows as a text table."""
        headers = ["Validator"] + self.transformations + ["Overall"]
        rows: list[list[object]] = []
        for i, layer in enumerate(self.layer_names):
            rows.append(
                [f"single[{layer}]"]
                + [float(v) for v in self.single_auc[i]]
                + [float(self.single_overall[i])]
            )
        rows.append(
            ["best transformation-specific"]
            + [float(v) for v in self.best_specific]
            + [self.best_single_overall]
        )
        rows.append(
            ["joint validator"]
            + [float(v) for v in self.joint_auc]
            + [self.joint_overall]
        )
        return format_table(
            headers, rows, title=f"Table VI — ROC-AUC of Deep Validation on {self.dataset_name}"
        )


def _per_layer_and_joint(
    context: ExperimentContext, images: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    _, per_layer = context.engine.discrepancies(images)
    return per_layer, context.validator.combine(per_layer)


def run_table6(dataset_name: str, profile: str = "tiny", seed: int = 0) -> Table6Result:
    """Compute Table VI (per-layer and joint ROC-AUC) for one dataset."""
    context = get_context(dataset_name, profile, seed)
    transformations = context.suite.viable_transformations

    clean_layers, clean_joint = _per_layer_and_joint(context, context.clean_images)
    layer_count = clean_layers.shape[1]

    single_auc = np.zeros((layer_count, len(transformations)))
    joint_auc = np.zeros(len(transformations))
    scc_counts: dict[str, int] = {}
    pooled_layers, pooled_joint = [], []

    for column, name in enumerate(transformations):
        scc = context.suite.result(name).scc_images
        scc_counts[name] = len(scc)
        scc_layers, scc_joint = _per_layer_and_joint(context, scc)
        pooled_layers.append(scc_layers)
        pooled_joint.append(scc_joint)
        labels = np.concatenate([np.zeros(len(clean_joint)), np.ones(len(scc_joint))])
        for layer in range(layer_count):
            scores = np.concatenate([clean_layers[:, layer], scc_layers[:, layer]])
            single_auc[layer, column] = roc_auc_score(labels, scores)
        joint_auc[column] = roc_auc_score(
            labels, np.concatenate([clean_joint, scc_joint])
        )

    all_scc_layers = np.concatenate(pooled_layers, axis=0)
    all_scc_joint = np.concatenate(pooled_joint)
    labels = np.concatenate([np.zeros(len(clean_joint)), np.ones(len(all_scc_joint))])
    single_overall = np.array(
        [
            roc_auc_score(
                labels, np.concatenate([clean_layers[:, layer], all_scc_layers[:, layer]])
            )
            for layer in range(layer_count)
        ]
    )
    joint_overall = roc_auc_score(
        labels, np.concatenate([clean_joint, all_scc_joint])
    )
    return Table6Result(
        dataset_name=dataset_name,
        layer_names=context.validated_layer_names(),
        transformations=transformations,
        single_auc=single_auc,
        single_overall=single_overall,
        joint_auc=joint_auc,
        joint_overall=float(joint_overall),
        scc_counts=scc_counts,
    )
