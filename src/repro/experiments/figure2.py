"""Figure 2 — examples of synthetic corner cases, rendered as ASCII panels."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.context import get_context

_SHADES = " .:-=+*#%@"


def ascii_image(image: np.ndarray, downsample: int = 1) -> str:
    """Render a (C, H, W) image in [0, 1] as ASCII art (luminance only)."""
    luminance = image.mean(axis=0)
    luminance = luminance[::downsample, ::downsample]
    index = np.clip((luminance * (len(_SHADES) - 1)).round().astype(int), 0, len(_SHADES) - 1)
    return "\n".join("".join(_SHADES[v] for v in row) for row in index)


@dataclass
class Figure2Result:
    dataset_name: str
    panels: list[tuple[str, np.ndarray]]

    def render(self) -> str:
        """Render all panels as ASCII art."""
        blocks = [f"Figure 2 — synthetic corner cases on {self.dataset_name}"]
        for name, image in self.panels:
            blocks.append(f"\n[{name}]")
            blocks.append(ascii_image(image, downsample=1 if image.shape[-1] <= 32 else 2))
        return "\n".join(blocks)


def run_figure2(dataset_name: str, profile: str = "tiny", seed: int = 0) -> Figure2Result:
    """Build the Figure 2 example panels for one dataset."""
    context = get_context(dataset_name, profile, seed)
    panels = [("original seed", context.suite.seeds[0])]
    for name in context.suite.viable_transformations:
        result = context.suite.result(name)
        panels.append((result.config.describe(), result.images[0]))
    return Figure2Result(dataset_name=dataset_name, panels=panels)
