"""Table III — model accuracy and mean top-1 confidence on clean test data."""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.datasets import DATASET_NAMES
from repro.experiments.context import get_context
from repro.utils.tables import format_table


@dataclass
class Table3Result:
    rows: list[tuple[str, float, float]]

    def render(self) -> str:
        """Render the accuracy/confidence rows as a text table."""
        return format_table(
            ["Dataset", "Accuracy on Test Data", "Mean Top-1 Prediction Confidence"],
            self.rows,
            title="Table III — model accuracy on test data",
        )

    def accuracy(self, dataset_name: str) -> float:
        """Test accuracy for one dataset row."""
        for name, accuracy, _ in self.rows:
            if name == dataset_name:
                return accuracy
        raise KeyError(dataset_name)


def run_table3(profile: str = "tiny", seed: int = 0) -> Table3Result:
    """Measure Table III for all three classifiers."""
    rows = []
    for dataset_name in DATASET_NAMES:
        context = get_context(dataset_name, profile, seed)
        rows.append(
            (
                dataset_name,
                context.classifier.test_accuracy,
                context.classifier.mean_top1_confidence,
            )
        )
    return Table3Result(rows=rows)
