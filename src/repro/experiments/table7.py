"""Table VII — Deep Validation vs feature squeezing vs KDE on corner cases."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detect.feature_squeezing import FeatureSqueezing
from repro.detect.kde import KernelDensityDetector
from repro.experiments.context import get_context
from repro.metrics.roc import roc_auc_score
from repro.utils.tables import format_table


@dataclass
class Table7Result:
    dataset_name: str
    rows: list[tuple[str, float]]

    def render(self) -> str:
        """Render the method-comparison rows as a text table."""
        return format_table(
            ["Method", "Overall ROC-AUC Score (SCCs)"],
            self.rows,
            title=f"Table VII — baseline comparison on {self.dataset_name}",
        )

    def auc(self, method: str) -> float:
        """Overall ROC-AUC of one method row."""
        for name, value in self.rows:
            if name == method:
                return value
        raise KeyError(method)


def run_table7(dataset_name: str, profile: str = "tiny", seed: int = 0) -> Table7Result:
    """Compute Table VII (Deep Validation vs baselines) for one dataset."""
    context = get_context(dataset_name, profile, seed)
    clean = context.clean_images
    scc, _ = context.suite.all_scc_images()
    labels = np.concatenate([np.zeros(len(clean)), np.ones(len(scc))])

    dataset = context.dataset
    detectors = [
        ("Deep Validation", None),
        (
            "Feature Squeezing",
            FeatureSqueezing(context.model, greyscale=dataset.channels == 1),
        ),
        ("Kernel Density Estimation", KernelDensityDetector(context.model)),
    ]
    rows = []
    for name, detector in detectors:
        if detector is None:
            scores = np.concatenate(
                [
                    context.engine.joint_discrepancy(clean),
                    context.engine.joint_discrepancy(scc),
                ]
            )
        else:
            detector.fit(dataset.train_images, dataset.train_labels)
            scores = np.concatenate([detector.score(clean), detector.score(scc)])
        rows.append((name, float(roc_auc_score(labels, scores))))
    return Table7Result(dataset_name=dataset_name, rows=rows)
