"""Experiment harness: one runner per table and figure in the paper.

Each ``run_*`` function returns a structured result object with a
``render()`` method producing the paper-style text table, so benchmarks can
assert on the numbers and print the rows side by side with the paper's.
"""

from repro.experiments.context import ExperimentContext, get_context
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5
from repro.experiments.table6 import run_table6
from repro.experiments.table7 import run_table7
from repro.experiments.table8 import run_table8
from repro.experiments.figure2 import run_figure2
from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4

__all__ = [
    "ExperimentContext",
    "get_context",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_table7",
    "run_table8",
    "run_figure2",
    "run_figure3",
    "run_figure4",
]
