"""Deep Validation: runtime validation of a DNN classifier's internal states.

The paper's primary contribution (Section III-B). A trained classifier's
hidden layers are instrumented with probes; per (layer, class) one-class
SVMs fitted on training-image representations model each layer's valid input
region; at inference the signed distance of the test representation to the
predicted class's hyperplane is negated into a per-layer discrepancy, and
the unweighted sum over layers is the joint discrepancy used to flag
error-inducing corner cases.
"""

from repro.core.engine import ValidationEngine
from repro.core.checkpoint import (
    CheckpointIntegrityError,
    CheckpointStore,
    TaskJournal,
    default_checkpoint_store,
)
from repro.core.fitting import (
    HungWorkerError,
    ParallelFitWarning,
    default_fit_jobs,
    fit_validators_from_arrays,
    resolve_n_jobs,
    resolve_task_timeout,
)
from repro.core.validator import DeepValidator, LayerValidator, ValidatorConfig
from repro.core.thresholds import centroid_threshold, fpr_calibrated_threshold
from repro.core.monitor import RuntimeMonitor, ValidationVerdict
from repro.core.resilience import (
    CircuitBreaker,
    DegradedModeWarning,
    DegradedScorer,
    InputGuard,
)
from repro.core.weighting import (
    fit_auc_greedy_weights,
    fit_logistic_weights,
    weighted_auc,
)
from repro.core.selection import (
    SelectionStep,
    greedy_layer_selection,
    smallest_subset_reaching,
)
from repro.core.drift import DiscrepancyDriftMonitor, DriftState
from repro.core.bundle import (
    BundleError,
    BundleIntegrityError,
    BundleManifest,
    BundleStore,
    BundleValidationError,
    ValidatorBundle,
)
from repro.core.calibration import (
    IsotonicCalibrator,
    PlattCalibrator,
    expected_calibration_error,
)

__all__ = [
    "ValidationEngine",
    "CheckpointIntegrityError",
    "CheckpointStore",
    "TaskJournal",
    "default_checkpoint_store",
    "HungWorkerError",
    "ParallelFitWarning",
    "default_fit_jobs",
    "fit_validators_from_arrays",
    "resolve_n_jobs",
    "resolve_task_timeout",
    "DeepValidator",
    "LayerValidator",
    "ValidatorConfig",
    "centroid_threshold",
    "fpr_calibrated_threshold",
    "RuntimeMonitor",
    "ValidationVerdict",
    "CircuitBreaker",
    "DegradedModeWarning",
    "DegradedScorer",
    "InputGuard",
    "fit_logistic_weights",
    "fit_auc_greedy_weights",
    "weighted_auc",
    "SelectionStep",
    "greedy_layer_selection",
    "smallest_subset_reaching",
    "DiscrepancyDriftMonitor",
    "DriftState",
    "BundleError",
    "BundleIntegrityError",
    "BundleManifest",
    "BundleStore",
    "BundleValidationError",
    "ValidatorBundle",
    "PlattCalibrator",
    "IsotonicCalibrator",
    "expected_calibration_error",
]
