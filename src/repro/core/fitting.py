"""Parallel, memory-bounded fitting pipeline for Algorithm 1.

``DeepValidator.fit`` used to materialise the hidden representations of
every kept training image in one unchunked forward pass, then run the
``layers x classes`` independent one-class SMO solves strictly serially.
This module decomposes that into three stages:

1. **Planning** — :func:`plan_fit_tasks` replays Algorithm 1's exact
   per-layer RNG discipline (``seed + layer position``, classes visited in
   sorted order) to decide *which rows* each ``(layer, class)`` task will
   train on, before any activation is computed. Subsampling therefore
   depends only on the labels and the seed, never on worker scheduling.
2. **Chunked extraction** — :func:`extract_task_features` streams the kept
   images through :meth:`ProbedSequential.iter_hidden_representations` in
   ``chunk_size`` batches and gathers *only* the planned rows per layer, so
   peak transient memory is ``chunk_size x widest layer`` plus the
   (``classes x max_per_class``)-row training buffers — never the full
   dataset's activations.
3. **Task-graph solving** — :func:`solve_tasks` dispatches the independent
   ``(layer, class)`` solves (scaler stats, Gram matrix, SMO) over a
   ``multiprocessing`` pool. Each worker computes its own Gram block;
   results are merged by task key, so the assembled validator is
   bit-identical regardless of worker count or completion order.
   ``n_jobs=1`` runs the same solve in-process (the exact serial math).

Stage 3 is also the pipeline's recovery point:

* **Task journal** — given a ``journal``
  (:class:`~repro.core.checkpoint.TaskJournal`), every completed solution
  is flushed to disk as it lands; a rerun replays the journal and solves
  only the missing tasks, so a crash at task 97/100 costs three solves,
  not a hundred. Replayed and freshly-solved tasks are bit-identical —
  both ran the same :func:`_solve_fit_task` math. The journal's header
  frame fingerprints the solve config and task features, so a stale
  journal under a reused name is discarded, never merged.
* **Hung-worker watchdog** — a per-task deadline (``task_timeout`` or the
  ``REPRO_FIT_TASK_TIMEOUT`` environment variable, seconds) bounds how
  long the coordinator waits on any one solve; expiry terminates and
  recycles the whole pool rather than deadlocking the fit.
* **Bounded retry** — pool construction failures, worker crashes, and
  watchdog expiries are retried up to ``max_retries`` times with
  exponential backoff (progress made before a failure is kept — only
  still-missing tasks are redispatched); when retries are exhausted, the
  remaining work degrades to the in-process path with a
  :class:`ParallelFitWarning` instead of aborting the fit.

The determinism contract (``n_jobs=1`` ≡ ``n_jobs=N`` ≡ interrupted +
resumed) is pinned by the hypothesis suites in
``tests/test_fitting_determinism.py`` and ``tests/test_checkpoint_resume.py``.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.obs.profile import profile_section
from repro.svm.oneclass import OneClassSVM
from repro.svm.scaler import StandardScaler
from repro.utils.cache import hash_array
from repro.utils.rng import new_rng
from repro.utils.warnings_ import emit_warning


def _tasks_counter():
    return obs.counter(
        "fit_tasks_total",
        help="Completed (layer, class) solves by execution mode",
        labels=("mode",),
    )

#: Environment variable holding the per-task watchdog deadline, in seconds.
TASK_TIMEOUT_ENV = "REPRO_FIT_TASK_TIMEOUT"

#: Sleep hook for retry backoff; tests patch this to keep suites fast.
_sleep = time.sleep


class ParallelFitWarning(RuntimeWarning):
    """Raised (as a warning) when parallel fitting falls back to in-process.

    Emitted through :func:`repro.utils.warnings_.emit_warning`, so
    ``REPRO_STRICT=1`` escalates the silent fallback into an error.
    """


class HungWorkerError(RuntimeError):
    """A fit task missed its watchdog deadline; the pool was recycled.

    Raised internally by one parallel attempt and caught by
    :func:`solve_tasks`'s retry loop — it only escapes to callers through
    the eventual :class:`ParallelFitWarning` message when every retry
    hangs too.
    """


class NonRetryableFitError(RuntimeError):
    """An error the parallel retry machinery must propagate, never absorb.

    The pool-attempt loop wraps arbitrary worker failures for retry and
    eventual serial fallback; exceptions deriving from this class punch
    straight through instead. The fault injectors subclass it (via
    :class:`repro.testing.faults.InjectedCrashError`) so that a
    misconfiguration they refuse to model — e.g. a hung worker with the
    watchdog disabled — fails the fit loudly rather than being retried
    into a silent serial fallback.
    """


class _PoolAttemptFailure(Exception):
    """Internal: one parallel attempt failed in the pool machinery.

    Wraps pool-construction errors, dispatch errors, and worker crashes —
    the failures a pool recycle plus retry may fix. Exceptions raised
    while *recording* a finished solution (journal I/O, injected crashes,
    strict-mode escalations) and :class:`NonRetryableFitError` subclasses
    deliberately do not get this wrapper and propagate to the caller.
    """


@dataclass(frozen=True)
class FitTask:
    """One independent unit of Algorithm 1: fit class ``klass`` at one layer.

    ``position`` indexes the validated-layer list (it seeds the RNG),
    ``layer_index`` the model probe, and ``rows`` the training-set rows the
    task trains on — in the exact (possibly shuffled) order the serial
    subsampler would visit them, since SMO initialisation is order-sensitive.
    """

    position: int
    layer_index: int
    klass: int
    rows: np.ndarray

    @property
    def key(self) -> tuple[int, int]:
        return (self.position, self.klass)


@dataclass
class TaskSolution:
    """Everything a worker ships back from one ``(layer, class)`` solve.

    The full dual vector stays in the worker; only the support set, offsets,
    fitted kernel, and scaler statistics cross the process boundary —
    exactly the pieces :meth:`OneClassSVM.from_solution` needs.
    """

    support_vectors: np.ndarray
    dual_coef: np.ndarray
    rho: float
    norm_w: float
    kernel: object
    iterations: int
    converged: bool
    scaler_mean: np.ndarray | None = None
    scaler_scale: np.ndarray | None = None


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalise the ``n_jobs`` knob: ``-1`` means every usable core."""
    if n_jobs is None:
        return 1
    if n_jobs == -1:
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # platforms without CPU affinity
            return max(1, os.cpu_count() or 1)
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be -1 or >= 1, got {n_jobs}")
    return int(n_jobs)


def default_fit_jobs(cap: int = 4) -> int:
    """Worker count for callers without an explicit knob.

    Honours the ``REPRO_FIT_JOBS`` environment variable, otherwise the
    usable core count capped at ``cap`` (fit parallelism saturates quickly
    on the small per-task Grams the paper's settings produce).
    """
    env = os.environ.get("REPRO_FIT_JOBS")
    if env is not None:
        return resolve_n_jobs(int(env))
    return min(cap, resolve_n_jobs(-1))


# -- stage 1: planning ---------------------------------------------------------


def plan_fit_tasks(labels, layer_positions, config) -> list[FitTask]:
    """Replay Algorithm 1's subsampling to a task list, without activations.

    ``layer_positions`` is a list of ``(position, layer_index)`` pairs as
    enumerated by ``DeepValidator.fit``; ``position`` feeds the per-layer
    RNG (``config.seed + position``) exactly like the serial path, and
    classes are visited in ``np.unique`` order, so the chosen rows — and
    their order — match a serial ``LayerValidator.fit`` draw for draw.
    """
    labels = np.asarray(labels)
    if not config.per_class:
        labels = np.zeros(len(labels), dtype=np.int64)
    tasks: list[FitTask] = []
    for position, layer_index in layer_positions:
        gen = new_rng(config.seed + position)
        for klass in np.unique(labels):
            rows = np.flatnonzero(labels == klass)
            if len(rows) < 2:
                raise ValueError(
                    f"class {klass} has only {len(rows)} correctly classified "
                    "training images; cannot fit its reference distribution"
                )
            if len(rows) > config.max_per_class:
                rows = gen.choice(rows, size=config.max_per_class, replace=False)
            tasks.append(FitTask(position, layer_index, int(klass), rows))
    return tasks


# -- stage 2: chunked extraction -----------------------------------------------


def extract_task_features(
    model, images: np.ndarray, tasks: list[FitTask], chunk_size: int = 256
) -> dict[tuple[int, int], np.ndarray]:
    """Gather each task's training features with bounded transient memory.

    Streams ``images`` through the model in ``chunk_size`` batches and
    copies only the planned rows of each validated layer into per-layer
    buffers (at most ``classes x max_per_class`` rows each); the full
    ``(N, features)`` activation matrices are never materialised.
    """
    unions: dict[int, np.ndarray] = {}
    for task in tasks:
        if task.layer_index in unions:
            unions[task.layer_index] = np.union1d(unions[task.layer_index], task.rows)
        else:
            unions[task.layer_index] = np.unique(task.rows)

    buffers: dict[int, np.ndarray] = {}
    for start, _, reps in model.iter_hidden_representations(images, batch_size=chunk_size):
        stop = start + len(reps[0]) if reps else start
        for layer_index, union in unions.items():
            lo, hi = np.searchsorted(union, [start, stop])
            if lo == hi:
                continue
            rep = reps[layer_index]
            if layer_index not in buffers:
                buffers[layer_index] = np.empty((len(union), rep.shape[1]), dtype=rep.dtype)
            buffers[layer_index][lo:hi] = rep[union[lo:hi] - start]

    features: dict[tuple[int, int], np.ndarray] = {}
    for task in tasks:
        union = unions[task.layer_index]
        positions = np.searchsorted(union, task.rows)
        features[task.key] = np.asarray(
            buffers[task.layer_index][positions], dtype=np.float64
        )
    return features


# -- stage 3: the (layer, class) task graph ------------------------------------


def _solve_config(config) -> dict:
    """The picklable slice of ``ValidatorConfig`` a solve needs."""
    return {
        "nu": config.nu,
        "kernel": config.kernel,
        "gamma": config.gamma,
        "standardize": config.standardize,
    }


def _solve_fit_task(payload) -> tuple[tuple[int, int], TaskSolution]:
    """Worker body: scaler stats, Gram, and SMO for one task.

    Runs identically in-process and in a pool worker — the same
    ``StandardScaler.fit`` and ``OneClassSVM.fit`` calls the serial path
    makes, so solutions are bit-identical either way.
    """
    key, features, cfg = payload
    scaler_mean = scaler_scale = None
    if cfg["standardize"]:
        scaler = StandardScaler().fit(features)
        scaler_mean, scaler_scale = scaler.mean_, scaler.scale_
        features = scaler.transform(features)
    svm = OneClassSVM(nu=cfg["nu"], kernel=cfg["kernel"], gamma=cfg["gamma"]).fit(features)
    return key, TaskSolution(
        support_vectors=svm.support_vectors_,
        dual_coef=svm.dual_coef_,
        rho=svm.rho_,
        norm_w=svm.norm_w_,
        kernel=svm.kernel_,
        iterations=svm.result_.iterations,
        converged=svm.result_.converged,
        scaler_mean=scaler_mean,
        scaler_scale=scaler_scale,
    )


def _make_pool(processes: int):
    """Pool constructor, separated so tests can simulate pool failures."""
    import multiprocessing

    return multiprocessing.get_context().Pool(processes=processes)


def resolve_task_timeout(task_timeout: float | None = None) -> float | None:
    """Normalise the per-task watchdog deadline.

    ``None`` consults ``REPRO_FIT_TASK_TIMEOUT`` (seconds; unset, empty,
    or non-positive disables the watchdog); an explicit non-positive value
    force-disables it regardless of the environment.
    """
    if task_timeout is not None:
        return float(task_timeout) if task_timeout > 0 else None
    env = os.environ.get(TASK_TIMEOUT_ENV, "").strip()
    if not env:
        return None
    value = float(env)
    return value if value > 0 else None


def _journal_fingerprint(task_features, cfg) -> str:
    """Identity stamp of one solve: config plus a content hash per task.

    Written as the journal's header so that a journal produced from
    different data or solver settings under the same name (journals are
    keyed only by dataset/profile/seed) is discarded instead of silently
    merged into the fitted validator — replaying foreign solutions would
    break the bit-identity contract without any error.
    """
    digest = hashlib.sha256()
    digest.update(repr(sorted(cfg.items())).encode())
    for key in sorted(task_features):
        digest.update(repr(key).encode())
        digest.update(hash_array(task_features[key]).encode())
    return digest.hexdigest()


def _replay_journal(journal, task_features, cfg) -> dict:
    """Validated journal replay: prior solutions, or a cleared journal.

    A journal whose header matches this solve's fingerprint replays its
    recorded solutions; a mismatch (different data/config, or a
    pre-header journal) clears it. Either way the journal leaves stamped
    with the current fingerprint, ready for incremental appends.
    """
    fingerprint = _journal_fingerprint(task_features, cfg)
    if journal.exists() and journal.header() != fingerprint:
        journal.clear()
    if not journal.exists():
        journal.write_header(fingerprint)
    return {
        key: solution
        for key, solution in journal.replay()
        if key in task_features
    }


def _record_solution(key, solution, solutions, journal) -> None:
    """Land one finished solution: merge it and flush it to the journal.

    Module-level on purpose — this is the crash seam
    :func:`repro.testing.faults.crash_at_task` patches to simulate a kill
    after exactly *j* solutions have been journaled.
    """
    solutions[key] = solution
    if journal is not None:
        journal.append((key, solution))


def _solve_parallel(
    pending, task_features, cfg, n_jobs, timeout, solutions, journal
) -> None:
    """One pool attempt over ``pending``; records solutions as they land.

    Pool machinery failures (construction, dispatch, worker crashes) raise
    :class:`_PoolAttemptFailure`; a watchdog expiry raises
    :class:`HungWorkerError` after terminating the pool. Either way, every
    solution recorded before the failure is kept, so retries only redo the
    genuinely missing work.
    """
    import multiprocessing

    try:
        pool = _make_pool(min(n_jobs, len(pending)))
    except Exception as exc:  # noqa: BLE001 — robustness is the contract
        raise _PoolAttemptFailure(exc) from exc
    try:
        try:
            handles = [
                (key, pool.apply_async(_solve_fit_task, ((key, task_features[key], cfg),)))
                for key in pending
            ]
        except NonRetryableFitError:
            raise
        except Exception as exc:  # noqa: BLE001
            raise _PoolAttemptFailure(exc) from exc
        for key, handle in handles:
            try:
                solved_key, solution = (
                    handle.get(timeout) if timeout is not None else handle.get()
                )
            except multiprocessing.TimeoutError as exc:
                raise HungWorkerError(
                    f"fit task {key} missed its {timeout}s deadline "
                    f"({TASK_TIMEOUT_ENV}); recycling the worker pool"
                ) from exc
            except NonRetryableFitError:
                raise
            except Exception as exc:  # noqa: BLE001
                raise _PoolAttemptFailure(exc) from exc
            _record_solution(solved_key, solution, solutions, journal)
    finally:
        # Recycle the pool unconditionally: terminate() is what reclaims a
        # hung worker, and it is also how Pool.__exit__ ends a clean run.
        pool.terminate()


def solve_tasks(
    task_features: dict[tuple[int, int], np.ndarray],
    config,
    n_jobs: int = 1,
    journal=None,
    task_timeout: float | None = None,
    max_retries: int = 2,
    retry_backoff: float = 0.1,
) -> dict[tuple[int, int], TaskSolution]:
    """Solve every task, in-process or across a worker pool.

    Payloads are dispatched in sorted key order and results are merged by
    key, so the mapping is deterministic regardless of scheduling.

    ``journal`` (a :class:`~repro.core.checkpoint.TaskJournal`) makes the
    solve resumable: previously journaled solutions are replayed instead
    of recomputed, and every new solution is flushed before the next task
    starts. The journal carries a fingerprint header of the solve config
    and task features; a journal written for different data or settings
    is cleared rather than replayed. ``task_timeout`` (default: ``REPRO_FIT_TASK_TIMEOUT``) is the
    hung-worker watchdog — a task that misses the deadline gets its pool
    terminated and recycled. Pool failures of any kind are retried up to
    ``max_retries`` times with exponential backoff (``retry_backoff``,
    doubling per retry); exhausted retries degrade the remaining work to
    the in-process path with a :class:`ParallelFitWarning` — a failed,
    hung, or flaky pool never aborts the fit, and never changes its
    result.
    """
    cfg = _solve_config(config)
    ordered = sorted(task_features)
    solutions: dict = {}
    with obs.span("fit.solve_tasks", tasks=len(ordered), n_jobs=n_jobs), \
            profile_section("fit.solve"):
        if journal is not None:
            replayed = _replay_journal(journal, task_features, cfg)
            if replayed:
                _tasks_counter().labels(mode="replayed").inc(len(replayed))
            solutions.update(replayed)
        n_jobs = resolve_n_jobs(n_jobs)
        timeout = resolve_task_timeout(task_timeout)
        pending = [key for key in ordered if key not in solutions]
        if n_jobs > 1 and len(pending) > 1:
            attempts = 1 + max(0, int(max_retries))
            failure: Exception | None = None
            solved_before = len(solutions)
            for attempt in range(attempts):
                if attempt:
                    obs.counter(
                        "fit_pool_retries_total",
                        help="Parallel-fit pool attempts beyond the first",
                    ).inc()
                    _sleep(retry_backoff * (2 ** (attempt - 1)))
                pending = [key for key in ordered if key not in solutions]
                if not pending:
                    break
                try:
                    _solve_parallel(
                        pending, task_features, cfg, n_jobs, timeout, solutions, journal
                    )
                    failure = None
                    break
                except (HungWorkerError, _PoolAttemptFailure) as exc:
                    failure = exc
            if len(solutions) > solved_before:
                _tasks_counter().labels(mode="pool").inc(
                    len(solutions) - solved_before
                )
            if failure is not None:
                obs.counter(
                    "fit_serial_fallback_total",
                    help="Fits whose pool retries were exhausted and degraded "
                    "to in-process solving",
                ).inc()
                cause = failure.__cause__ if failure.__cause__ is not None else failure
                emit_warning(
                    f"parallel fit (n_jobs={n_jobs}) failed after {attempts} "
                    f"attempt(s) with {type(cause).__name__}: {cause}; "
                    "falling back to in-process fitting",
                    ParallelFitWarning,
                    stacklevel=2,
                )
        for key in ordered:
            if key not in solutions:
                with obs.span("fit.solve_task", layer=key[0], klass=key[1]):
                    _, solution = _solve_fit_task((key, task_features[key], cfg))
                _tasks_counter().labels(mode="inprocess").inc()
                _record_solution(key, solution, solutions, journal)
    return {key: solutions[key] for key in ordered}


# -- assembly ------------------------------------------------------------------


def build_layer_validators(
    tasks: list[FitTask],
    solutions: dict[tuple[int, int], TaskSolution],
    layer_positions,
    layer_names,
    config,
) -> list:
    """Assemble fitted ``LayerValidator``s from task solutions.

    Iterates tasks (already in planning order) rather than the solution
    mapping, so assembly order — and therefore every downstream structure —
    is fixed by the plan, not by worker completion.
    """
    from repro.core.validator import LayerValidator

    by_position = {position: layer_index for position, layer_index in layer_positions}
    validators = {
        position: LayerValidator(layer_index, layer_names[layer_index], config)
        for position, layer_index in layer_positions
    }
    for task in tasks:
        solution = solutions[task.key]
        scaler = None
        if config.standardize:
            scaler = StandardScaler.from_stats(
                solution.scaler_mean, solution.scaler_scale
            )
        svm = OneClassSVM.from_solution(
            kernel=solution.kernel,
            support_vectors=solution.support_vectors,
            dual_coef=solution.dual_coef,
            rho=solution.rho,
            norm_w=solution.norm_w,
            nu=config.nu,
            iterations=solution.iterations,
            converged=solution.converged,
        )
        validators[task.position].install(task.klass, svm, scaler)
    return [validators[position] for position, _ in layer_positions]


# -- front ends ----------------------------------------------------------------


def fit_deep_validator(
    model,
    images: np.ndarray,
    labels: np.ndarray,
    layer_indices: list[int],
    config,
    chunk_size: int = 256,
    n_jobs: int | None = None,
    journal=None,
) -> list:
    """The full pipeline behind ``DeepValidator.fit``: plan, extract, solve.

    ``n_jobs`` defaults to ``config.n_jobs``. ``journal`` (a
    :class:`~repro.core.checkpoint.TaskJournal`) makes the solve stage
    resumable across process deaths; the plan is a pure function of the
    labels and the seed, so a journal written by an interrupted fit of the
    same data/config replays into the identical task graph. Returns the
    fitted per-layer validators in layer order.
    """
    layer_positions = list(enumerate(layer_indices))
    with obs.span(
        "fit.pipeline", layers=len(layer_indices), images=len(images)
    ):
        with profile_section("fit.plan"):
            tasks = plan_fit_tasks(labels, layer_positions, config)
        with profile_section("fit.extract"):
            task_features = extract_task_features(
                model, images, tasks, chunk_size=chunk_size
            )
        if n_jobs is None:
            n_jobs = getattr(config, "n_jobs", 1)
        solutions = solve_tasks(task_features, config, n_jobs=n_jobs, journal=journal)
        return build_layer_validators(
            tasks, solutions, layer_positions, model.probe_names, config
        )


def fit_validators_from_arrays(
    representations: list[np.ndarray],
    labels: np.ndarray,
    layer_indices: list[int],
    config,
    n_jobs: int = 1,
    layer_names: list[str] | None = None,
    journal=None,
) -> list:
    """Fit per-layer validators from already-extracted representations.

    ``representations[i]`` holds layer ``i``'s ``(N, features_i)`` matrix.
    Used by the determinism suite (no model required) and by callers that
    already hold activations; mathematically identical to
    ``LayerValidator.fit`` per layer. ``journal`` passes through to
    :func:`solve_tasks` for crash-safe, resumable solving.
    """
    labels = np.asarray(labels)
    if layer_names is None:
        layer_names = [f"layer{i}" for i in range(len(representations))]
    layer_positions = list(enumerate(layer_indices))
    tasks = plan_fit_tasks(labels, layer_positions, config)
    task_features = {
        task.key: np.asarray(
            representations[task.layer_index][task.rows], dtype=np.float64
        )
        for task in tasks
    }
    solutions = solve_tasks(task_features, config, n_jobs=n_jobs, journal=journal)
    return build_layer_validators(tasks, solutions, layer_positions, layer_names, config)
