"""Versioned, self-verifying validator bundles: the deployable artifact.

A fitted :class:`~repro.core.validator.DeepValidator` is only half of a
deployment — the other half is everything that makes its verdicts
trustworthy: the calibrated threshold ``epsilon``, the per-layer
contributions degraded-mode rescaling depends on, and a fingerprint that
pins *which fit* produced them. A refit that ships without those (or with
a poisoned version of them — a NaN threshold, a truncated pickle, a
manifest that no longer matches its payload) must be refused at the door,
not discovered in production flag rates.

:class:`ValidatorBundle` packages all of it into one versioned unit:

* the **payload** — the pickled fitted validator, byte-for-byte what was
  packed;
* the **manifest** — version, fit fingerprint (sha256 of the payload),
  the calibrated threshold, the validated layer names, and the per-layer
  contributions, duplicated *outside* the pickle so an operator can
  inspect a bundle without unpickling (and so :meth:`ValidatorBundle.verify`
  can cross-check the two);
* two check layers — :meth:`~ValidatorBundle.verify` (integrity: does the
  payload match the fingerprint, does the manifest agree with the
  unpickled validator) and :meth:`~ValidatorBundle.validate` (semantics:
  is the threshold finite, is every layer actually fitted, are the
  contributions usable).

:class:`BundleStore` shelves bundles through a
:class:`~repro.core.checkpoint.CheckpointStore`, reusing its
length + sha256 + pickle framing and atomic ``os.replace`` writes — so a
bundle on disk is doubly verified (the store's frame catches rot, the
manifest fingerprint catches payload/manifest divergence) and a corrupt
bundle is quarantined, never half-loaded. The serve-layer
:class:`~repro.serve.rollout.RolloutController` consumes these bundles to
hot-swap a live server's monitor with shadow scoring and automatic
rollback; see ``docs/rollout.md``.
"""

from __future__ import annotations

import hashlib
import pickle
import re
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.core.checkpoint import (
    CheckpointIntegrityError,
    CheckpointStore,
    _check_name,
)


class BundleError(RuntimeError):
    """Base class for validator-bundle failures."""


class BundleIntegrityError(BundleError):
    """A bundle's bytes, fingerprint, and manifest do not agree."""


class BundleValidationError(BundleError):
    """A bundle is intact but semantically unfit to serve (e.g. NaN epsilon)."""


#: On-disk key pattern: ``bundle-<name>-v<version>`` inside a CheckpointStore.
_KEY_RE = re.compile(r"^bundle-(?P<name>[A-Za-z0-9][A-Za-z0-9._-]*)-v(?P<version>\d+)$")


def _fingerprint(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


@dataclass(frozen=True)
class BundleManifest:
    """Inspectable identity of a bundle, duplicated outside the pickle.

    ``fingerprint`` is the sha256 of the pickled-validator payload — the
    *fit fingerprint*: two bundles with the same fingerprint carry the
    exact same fitted artifact, and a payload that no longer hashes to it
    has been tampered with or rotted. ``epsilon``, ``layer_names``, and
    ``layer_contributions`` mirror the validator's calibrated state so
    :meth:`ValidatorBundle.verify` can detect a manifest/payload split.
    """

    name: str
    version: int
    fingerprint: str
    epsilon: float
    combiner: str
    layer_names: tuple[str, ...]
    layer_contributions: tuple[float, ...] | None
    correctly_classified: int
    total_training_images: int
    note: str = ""

    @property
    def key(self) -> str:
        """The store key (and rollback-latch identity): ``<name>@v<version>``."""
        return f"{self.name}@v{self.version}"


class ValidatorBundle:
    """One deployable unit: manifest + pickled fitted validator payload."""

    def __init__(self, manifest: BundleManifest, payload: bytes) -> None:
        self.manifest = manifest
        self.payload = payload
        self._validator = None  # lazily unpickled

    # -- construction ----------------------------------------------------------

    @classmethod
    def pack(
        cls, validator, version: int, name: str = "validator", note: str = ""
    ) -> "ValidatorBundle":
        """Freeze a fitted, calibrated validator into a versioned bundle.

        Raises :class:`BundleValidationError` immediately when the
        validator is unfit to deploy (unfitted layers, non-finite
        ``epsilon``, broken contributions) — a poisoned artifact must
        fail at pack time, not after it ships.
        """
        _check_name(name)
        if not isinstance(version, int) or version < 1:
            raise ValueError(f"version must be a positive int, got {version!r}")
        payload = pickle.dumps(validator, protocol=pickle.HIGHEST_PROTOCOL)
        contributions = getattr(validator, "layer_contributions", None)
        manifest = BundleManifest(
            name=name,
            version=version,
            fingerprint=_fingerprint(payload),
            epsilon=float(validator.epsilon),
            combiner=validator.config.combiner,
            layer_names=tuple(v.layer_name for v in validator.validators),
            layer_contributions=(
                None
                if contributions is None
                else tuple(float(c) for c in np.asarray(contributions).ravel())
            ),
            correctly_classified=validator.fit_summary.correctly_classified,
            total_training_images=validator.fit_summary.total_training_images,
            note=note,
        )
        # Deliberately NOT caching the original validator object: the
        # bundle must serve exactly what it stores. validate() below runs
        # against the unpickled payload, so a fit that does not survive
        # the round trip fails at pack time — and a candidate monitor
        # built from this bundle never aliases the live incumbent.
        bundle = cls(manifest, payload)
        bundle.validate()
        return bundle

    # -- access ----------------------------------------------------------------

    @property
    def validator(self):
        """The fitted validator, unpickled from the payload on first access."""
        if self._validator is None:
            self._validator = pickle.loads(self.payload)
        return self._validator

    def monitor(self, **kwargs):
        """A fresh :class:`~repro.core.monitor.RuntimeMonitor` over the bundle.

        Convenience for rollout controllers and operators; ``kwargs`` pass
        through to the monitor constructor (guard, breaker tuning, clock).
        """
        from repro.core.monitor import RuntimeMonitor

        return RuntimeMonitor(self.validator, **kwargs)

    # -- the two check layers --------------------------------------------------

    def verify(self) -> "ValidatorBundle":
        """Integrity: payload ↔ fingerprint ↔ manifest must all agree.

        Raises :class:`BundleIntegrityError` when the payload no longer
        hashes to the manifest's fit fingerprint, or the unpickled
        validator disagrees with the manifest's threshold or layer list —
        either way the bundle is not the artifact its manifest claims.
        """
        actual = _fingerprint(self.payload)
        if actual != self.manifest.fingerprint:
            raise BundleIntegrityError(
                f"bundle {self.manifest.key}: payload fingerprint {actual[:12]}… "
                f"does not match the manifest's fit fingerprint "
                f"{self.manifest.fingerprint[:12]}…"
            )
        validator = self.validator
        if float(validator.epsilon) != self.manifest.epsilon and not (
            np.isnan(validator.epsilon) and np.isnan(self.manifest.epsilon)
        ):
            raise BundleIntegrityError(
                f"bundle {self.manifest.key}: manifest epsilon "
                f"{self.manifest.epsilon} != validator epsilon {validator.epsilon}"
            )
        names = tuple(v.layer_name for v in validator.validators)
        if names != self.manifest.layer_names:
            raise BundleIntegrityError(
                f"bundle {self.manifest.key}: manifest layers "
                f"{self.manifest.layer_names} != validator layers {names}"
            )
        return self

    def validate(self) -> "ValidatorBundle":
        """Semantics: is this bundle fit to serve?

        Raises :class:`BundleValidationError` on a non-finite calibrated
        threshold, an empty or partially-unfitted layer set, or recorded
        per-layer contributions that degraded-mode scoring could not use
        (non-finite, wrong length, or summing to zero). These are exactly
        the poisons a bad refit produces; every one of them would
        otherwise surface as silently wrong verdicts.
        """
        validator = self.validator
        if not validator.validators:
            raise BundleValidationError(
                f"bundle {self.manifest.key}: validator has no fitted layers"
            )
        if not np.isfinite(validator.epsilon):
            raise BundleValidationError(
                f"bundle {self.manifest.key}: calibrated threshold is "
                f"{validator.epsilon!r} (non-finite); refusing to deploy a "
                "monitor that can never flag (or never accept)"
            )
        for layer in validator.validators:
            if not getattr(layer, "_svms", None):
                raise BundleValidationError(
                    f"bundle {self.manifest.key}: layer {layer.layer_name!r} "
                    "has no fitted class SVMs"
                )
        contributions = getattr(validator, "layer_contributions", None)
        if contributions is not None:
            contributions = np.asarray(contributions, dtype=np.float64)
            if (
                contributions.shape != (len(validator.validators),)
                or not np.isfinite(contributions).all()
                or contributions.sum() <= 0
            ):
                raise BundleValidationError(
                    f"bundle {self.manifest.key}: per-layer contributions "
                    f"{contributions!r} are unusable for degraded-mode rescaling"
                )
        return self

    def __repr__(self) -> str:
        return (
            f"ValidatorBundle({self.manifest.key}, "
            f"fingerprint={self.manifest.fingerprint[:12]}…, "
            f"epsilon={self.manifest.epsilon:.4f}, "
            f"layers={len(self.manifest.layer_names)})"
        )


class BundleStore:
    """A versioned bundle shelf over a :class:`CheckpointStore`.

    Each saved bundle is one checkpoint entry named
    ``bundle-<name>-v<version>`` — the store's self-verifying frame
    (length + sha256 + pickle, atomic replace, quarantine on corruption)
    is the outer integrity layer; the bundle's own fingerprint is the
    inner one. :meth:`load` runs both, then :meth:`ValidatorBundle.validate`,
    so a bundle handed to a rollout is intact *and* fit to serve.
    """

    def __init__(self, root: str | Path | CheckpointStore) -> None:
        self.store = root if isinstance(root, CheckpointStore) else CheckpointStore(root)

    def key_for(self, name: str, version: int) -> str:
        """The checkpoint-entry key of one ``(name, version)`` bundle."""
        return f"bundle-{_check_name(name)}-v{int(version)}"

    def path_for(self, name: str, version: int) -> Path:
        """On-disk path of one bundle (fault injectors corrupt this file)."""
        return self.store.path_for(self.key_for(name, version))

    def exists(self, name: str, version: int) -> bool:
        """Whether ``(name, version)`` is currently on the shelf."""
        return self.store.exists(self.key_for(name, version))

    def save(self, bundle: ValidatorBundle) -> Path:
        """Atomically persist a bundle (verified + validated first)."""
        bundle.verify().validate()
        key = self.key_for(bundle.manifest.name, bundle.manifest.version)
        if self.store.exists(key):
            raise BundleError(
                f"bundle {bundle.manifest.key} already exists; bundles are "
                "immutable — bump the version instead of overwriting"
            )
        self.store.save(
            key, {"manifest": asdict(bundle.manifest), "payload": bundle.payload}
        )
        return self.store.path_for(key)

    def load(self, name: str, version: int) -> ValidatorBundle:
        """Load, integrity-check, and semantically validate one bundle.

        Raises :class:`FileNotFoundError` when absent,
        :class:`BundleIntegrityError` when the frame, fingerprint, or
        manifest cross-checks fail (the store quarantines a corrupt
        frame), and :class:`BundleValidationError` when the bundle is
        intact but unfit to serve.
        """
        key = self.key_for(name, version)
        try:
            state = self.store.load(key)
        except FileNotFoundError:
            raise
        except CheckpointIntegrityError as exc:
            raise BundleIntegrityError(
                f"bundle {name}@v{version}: {exc}"
            ) from exc
        except Exception as exc:  # unpicklable payload inside an intact frame
            raise BundleIntegrityError(
                f"bundle {name}@v{version}: frame verified but payload failed "
                f"to load ({type(exc).__name__}: {exc})"
            ) from exc
        if (
            not isinstance(state, dict)
            or set(state) != {"manifest", "payload"}
            or not isinstance(state["payload"], bytes)
        ):
            raise BundleIntegrityError(
                f"bundle {name}@v{version}: entry is not a validator bundle"
            )
        try:
            manifest = BundleManifest(**state["manifest"])
        except TypeError as exc:
            raise BundleIntegrityError(
                f"bundle {name}@v{version}: manifest schema mismatch ({exc})"
            ) from exc
        if manifest.name != name or manifest.version != int(version):
            raise BundleIntegrityError(
                f"bundle {name}@v{version}: manifest identifies itself as "
                f"{manifest.key}"
            )
        bundle = ValidatorBundle(manifest, state["payload"])
        try:
            bundle.verify()
        except BundleIntegrityError:
            raise
        except Exception as exc:  # a payload that will not unpickle
            raise BundleIntegrityError(
                f"bundle {name}@v{version}: payload failed to unpickle "
                f"({type(exc).__name__}: {exc})"
            ) from exc
        bundle.validate()
        return bundle

    def versions(self, name: str) -> list[int]:
        """All saved versions of ``name``, ascending."""
        _check_name(name)
        found = []
        for path in self.store.root.glob(f"bundle-{name}-v*.ckpt"):
            match = _KEY_RE.match(path.stem)
            if match and match.group("name") == name:
                found.append(int(match.group("version")))
        return sorted(found)

    def latest(self, name: str) -> ValidatorBundle | None:
        """The highest-versioned bundle of ``name``, or ``None``."""
        versions = self.versions(name)
        if not versions:
            return None
        return self.load(name, versions[-1])

    def __repr__(self) -> str:
        return f"BundleStore(root={self.store.root})"
