"""Learned weighting of per-layer discrepancies (paper future work).

Equation 3 joins per-layer discrepancies with an unweighted sum; the paper
notes "it can be improved via carefully assigning different weights to
different single validators". This module provides two weight-fitting
strategies over a small calibration set of clean images and corner cases:

* :func:`fit_logistic_weights` — logistic regression on the per-layer
  discrepancy matrix (weights are the learned coefficients).
* :func:`fit_auc_greedy_weights` — greedy coordinate search directly
  maximising ROC-AUC of the weighted sum.

Both return a weight vector that can be dropped into
``ValidatorConfig.weights`` (or applied post hoc via
:meth:`~repro.core.validator.DeepValidator.combine`).
"""

from __future__ import annotations

import numpy as np

from repro.metrics.roc import roc_auc_score


def _check_matrices(clean: np.ndarray, corner: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    clean = np.asarray(clean, dtype=np.float64)
    corner = np.asarray(corner, dtype=np.float64)
    if clean.ndim != 2 or corner.ndim != 2:
        raise ValueError("discrepancy matrices must be 2-D (samples x layers)")
    if clean.shape[1] != corner.shape[1]:
        raise ValueError(
            f"layer counts differ: {clean.shape[1]} vs {corner.shape[1]}"
        )
    if len(clean) == 0 or len(corner) == 0:
        raise ValueError("both calibration populations must be non-empty")
    return clean, corner


def fit_logistic_weights(
    clean: np.ndarray,
    corner: np.ndarray,
    iterations: int = 500,
    lr: float = 0.5,
    l2: float = 1e-3,
) -> np.ndarray:
    """Fit non-negative per-layer weights by logistic regression.

    The classifier is ``sigmoid(w . d + b)`` with label 1 for corner cases;
    gradient descent with an L2 penalty, and the returned weights are
    clipped at zero (a negative weight would reward *low* discrepancy in a
    layer, which inverts that validator's semantics) and rescaled to sum to
    the layer count so the magnitude stays comparable to the unweighted sum.
    """
    clean, corner = _check_matrices(clean, corner)
    features = np.concatenate([clean, corner], axis=0)
    labels = np.concatenate([np.zeros(len(clean)), np.ones(len(corner))])
    # Standardise per layer for stable optimisation.
    mean = features.mean(axis=0)
    scale = features.std(axis=0)
    scale[scale == 0] = 1.0
    standardised = (features - mean) / scale

    layers = features.shape[1]
    weights = np.zeros(layers)
    bias = 0.0
    n = len(features)
    for _ in range(iterations):
        logits = standardised @ weights + bias
        probabilities = 1.0 / (1.0 + np.exp(-logits))
        error = probabilities - labels
        grad_w = standardised.T @ error / n + l2 * weights
        grad_b = error.mean()
        weights -= lr * grad_w
        bias -= lr * grad_b
    # Map back to raw-feature space and normalise.
    weights = np.maximum(weights / scale, 0.0)
    total = weights.sum()
    if total <= 0:
        return np.ones(layers)
    return weights * layers / total


def fit_auc_greedy_weights(
    clean: np.ndarray,
    corner: np.ndarray,
    candidates: tuple[float, ...] = (0.0, 0.25, 0.5, 1.0, 2.0, 4.0),
    passes: int = 2,
) -> np.ndarray:
    """Greedy per-layer weight search maximising ROC-AUC directly.

    Starting from the unweighted sum, each coordinate is swept over
    ``candidates`` (holding the others fixed) and the best value kept;
    ``passes`` full sweeps are performed. Simple, monotone-safe, and
    surprisingly strong for a handful of layers.
    """
    clean, corner = _check_matrices(clean, corner)
    labels = np.concatenate([np.zeros(len(clean)), np.ones(len(corner))])
    stacked = np.concatenate([clean, corner], axis=0)
    layers = stacked.shape[1]
    weights = np.ones(layers)

    def auc(w: np.ndarray) -> float:
        return roc_auc_score(labels, stacked @ w)

    best = auc(weights)
    for _ in range(passes):
        for layer in range(layers):
            for candidate in candidates:
                trial = weights.copy()
                trial[layer] = candidate
                if trial.sum() == 0:
                    continue
                score = auc(trial)
                if score > best:
                    best = score
                    weights = trial
    return weights


def weighted_auc(
    clean: np.ndarray, corner: np.ndarray, weights: np.ndarray
) -> float:
    """ROC-AUC of the weighted-sum score on a labelled evaluation pair."""
    clean, corner = _check_matrices(clean, corner)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (clean.shape[1],):
        raise ValueError(
            f"weights must have shape ({clean.shape[1]},), got {weights.shape}"
        )
    labels = np.concatenate([np.zeros(len(clean)), np.ones(len(corner))])
    scores = np.concatenate([clean @ weights, corner @ weights])
    return roc_auc_score(labels, scores)
