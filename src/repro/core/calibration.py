"""Calibrating discrepancies into invalidity probabilities.

The joint discrepancy ``d`` is a raw score; operators reason better in
probabilities ("this input is 97 % likely to be a corner case"). Two
classic calibrators over a labelled calibration set (clean vs corner):

* :class:`PlattCalibrator` — a sigmoid ``p = 1 / (1 + exp(a d + b))``
  fitted by logistic regression (Platt 1999).
* :class:`IsotonicCalibrator` — non-parametric monotone regression via the
  pool-adjacent-violators algorithm; makes no shape assumption beyond
  "higher discrepancy means more likely invalid".
"""

from __future__ import annotations

import numpy as np


def _check_inputs(scores: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    if scores.shape != labels.shape or scores.ndim != 1:
        raise ValueError("scores and labels must be equal-length 1-D arrays")
    unique = set(np.unique(labels).tolist())
    if not unique <= {0.0, 1.0} or len(unique) < 2:
        raise ValueError("labels must contain both 0s and 1s")
    return scores, labels


class PlattCalibrator:
    """Sigmoid calibration of anomaly scores into probabilities."""

    def __init__(self, iterations: int = 500, lr: float = 0.1) -> None:
        self.iterations = iterations
        self.lr = lr
        self.slope_: float | None = None
        self.intercept_: float | None = None

    def fit(self, scores: np.ndarray, labels: np.ndarray) -> "PlattCalibrator":
        """Fit the sigmoid on (score, 0/1-label) calibration pairs."""
        scores, labels = _check_inputs(scores, labels)
        # Standardise for stable optimisation; fold back afterwards.
        mean, std = scores.mean(), scores.std() or 1.0
        z = (scores - mean) / std
        a, b = 1.0, 0.0
        n = len(z)
        for _ in range(self.iterations):
            p = 1.0 / (1.0 + np.exp(-(a * z + b)))
            error = p - labels
            grad_a = float((error * z).mean())
            grad_b = float(error.mean())
            a -= self.lr * grad_a
            b -= self.lr * grad_b
        self.slope_ = a / std
        self.intercept_ = b - a * mean / std
        return self

    def predict_proba(self, scores: np.ndarray) -> np.ndarray:
        """Calibrated invalidity probability for each score."""
        if self.slope_ is None:
            raise RuntimeError("PlattCalibrator is not fitted")
        scores = np.asarray(scores, dtype=np.float64)
        return 1.0 / (1.0 + np.exp(-(self.slope_ * scores + self.intercept_)))


def pool_adjacent_violators(values: np.ndarray, weights: np.ndarray | None = None) -> np.ndarray:
    """Isotonic (non-decreasing) regression by pool-adjacent-violators.

    Returns the non-decreasing sequence minimising weighted squared error
    to ``values``.
    """
    values = np.asarray(values, dtype=np.float64)
    weights = (
        np.ones_like(values) if weights is None else np.asarray(weights, dtype=np.float64)
    )
    if values.shape != weights.shape or values.ndim != 1:
        raise ValueError("values and weights must be equal-length 1-D arrays")
    # Blocks of (mean, weight, count), merged while order is violated.
    means: list[float] = []
    block_weights: list[float] = []
    counts: list[int] = []
    for value, weight in zip(values, weights):
        means.append(float(value))
        block_weights.append(float(weight))
        counts.append(1)
        while len(means) > 1 and means[-2] > means[-1]:
            total = block_weights[-2] + block_weights[-1]
            merged = (
                means[-2] * block_weights[-2] + means[-1] * block_weights[-1]
            ) / total
            means[-2:] = [merged]
            block_weights[-2:] = [total]
            counts[-2:] = [counts[-2] + counts[-1]]
    return np.repeat(means, counts)


class IsotonicCalibrator:
    """Monotone non-parametric calibration of anomaly scores."""

    def __init__(self) -> None:
        self.scores_: np.ndarray | None = None
        self.probabilities_: np.ndarray | None = None

    def fit(self, scores: np.ndarray, labels: np.ndarray) -> "IsotonicCalibrator":
        """Fit the monotone step function on calibration pairs."""
        scores, labels = _check_inputs(scores, labels)
        order = np.argsort(scores, kind="mergesort")
        self.scores_ = scores[order]
        self.probabilities_ = pool_adjacent_violators(labels[order])
        return self

    def predict_proba(self, scores: np.ndarray) -> np.ndarray:
        """Step-interpolated calibrated probability for each score."""
        if self.scores_ is None:
            raise RuntimeError("IsotonicCalibrator is not fitted")
        scores = np.asarray(scores, dtype=np.float64)
        indices = np.searchsorted(self.scores_, scores, side="right") - 1
        indices = np.clip(indices, 0, len(self.probabilities_) - 1)
        return self.probabilities_[indices]


def expected_calibration_error(
    probabilities: np.ndarray, labels: np.ndarray, bins: int = 10
) -> float:
    """ECE: mean |empirical frequency − predicted probability| over bins."""
    probabilities = np.asarray(probabilities, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.float64)
    if probabilities.shape != labels.shape:
        raise ValueError("probabilities and labels must have equal shape")
    edges = np.linspace(0.0, 1.0, bins + 1)
    total = len(probabilities)
    ece = 0.0
    for low, high in zip(edges[:-1], edges[1:]):
        mask = (probabilities >= low) & (
            (probabilities < high) if high < 1.0 else (probabilities <= high)
        )
        if not mask.any():
            continue
        ece += mask.sum() / total * abs(labels[mask].mean() - probabilities[mask].mean())
    return float(ece)
