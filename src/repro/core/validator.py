"""Layer validators and the joint Deep Validation detector.

Implements Algorithm 1 (one-class SVM training over correctly classified
training images, per layer per class) and Algorithm 2 (discrepancy
estimation for a test image), including the paper's DenseNet policy of
validating only the rear layers (Section IV-C) and the joint combination of
per-layer discrepancies (Eq. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.sequential import ProbedSequential
from repro.svm.oneclass import OneClassSVM
from repro.svm.packed import PackedClassSVMs, pack_class_svms
from repro.svm.scaler import StandardScaler
from repro.utils.rng import RngLike, new_rng

#: Sentinel distinguishing "pack not yet attempted" from "unpackable".
_PACK_UNSET = object()


@dataclass
class ValidatorConfig:
    """Hyper-parameters shared by every per-layer validator.

    ``nu`` bounds the training-outlier fraction of each one-class SVM;
    ``max_per_class`` subsamples each (layer, class) representation set to
    keep kernel matrices laptop-sized; ``layers`` restricts validation to a
    subset of probe indices (``None`` validates every hidden layer —
    rear-layer policies pass an explicit list); ``combiner`` selects how
    per-layer discrepancies join (the paper uses the unweighted ``"sum"``).

    ``filter_misclassified`` and ``per_class`` exist for ablations: the
    paper's Algorithm 1 both drops misclassified training images (line 2)
    and segments reference distributions by class; disabling either
    reproduces the degraded variants the paper argues against.

    ``n_jobs`` dispatches the independent (layer, class) SMO solves of
    Algorithm 1 over a worker pool (``-1`` = every usable core); the fitted
    validator is bit-identical for any worker count, so this is purely a
    wall-clock knob. See :mod:`repro.core.fitting`.
    """

    nu: float = 0.1
    kernel: str = "rbf"
    gamma: float | None = None
    max_per_class: int = 200
    layers: list[int] | None = None
    combiner: str = "sum"
    weights: list[float] | None = None
    standardize: bool = True
    filter_misclassified: bool = True
    per_class: bool = True
    seed: int = 0
    n_jobs: int = 1

    def __post_init__(self) -> None:
        if self.combiner not in {"sum", "mean", "max", "last"}:
            raise ValueError(
                f"combiner must be sum/mean/max/last, got {self.combiner!r}"
            )
        if self.n_jobs != -1 and self.n_jobs < 1:
            raise ValueError(f"n_jobs must be -1 or >= 1, got {self.n_jobs}")


class LayerValidator:
    """The paper's "single validator": all per-class SVMs of one layer.

    Fitted on the flattened hidden representations of correctly classified
    training images, grouped by true label. At test time the representation
    of each image is scored against the SVM of the *predicted* label and the
    signed distance is negated (Eq. 2), so positive discrepancy means
    outlier.
    """

    def __init__(self, layer_index: int, layer_name: str, config: ValidatorConfig) -> None:
        self.layer_index = layer_index
        self.layer_name = layer_name
        self.config = config
        self._svms: dict[int, OneClassSVM] = {}
        self._scalers: dict[int, StandardScaler] = {}

    @property
    def classes(self) -> list[int]:
        return sorted(self._svms)

    def fit(
        self,
        representations: np.ndarray,
        labels: np.ndarray,
        rng: RngLike = None,
    ) -> "LayerValidator":
        """Fit one one-class SVM per class present in ``labels``."""
        representations = np.asarray(representations, dtype=np.float64)
        labels = np.asarray(labels)
        if len(representations) != len(labels):
            raise ValueError("representations and labels must have equal length")
        self.__dict__.pop("_pack", None)  # refitting invalidates the packed scorer
        # Refitting replaces the class set wholesale: SVMs for classes absent
        # from the new labels must not survive into ``classes`` or pickles.
        self._svms = {}
        self._scalers = {}
        if not self.config.per_class:
            # Ablation: one class-agnostic reference distribution per layer.
            labels = np.zeros(len(labels), dtype=np.int64)
        gen = new_rng(rng if rng is not None else self.config.seed)
        for klass in np.unique(labels):
            rows = np.flatnonzero(labels == klass)
            if len(rows) < 2:
                raise ValueError(
                    f"class {klass} has only {len(rows)} correctly classified "
                    "training images; cannot fit its reference distribution"
                )
            if len(rows) > self.config.max_per_class:
                rows = gen.choice(rows, size=self.config.max_per_class, replace=False)
            features = representations[rows]
            if self.config.standardize:
                scaler = StandardScaler().fit(features)
                self._scalers[int(klass)] = scaler
                features = scaler.transform(features)
            svm = OneClassSVM(
                nu=self.config.nu, kernel=self.config.kernel, gamma=self.config.gamma
            )
            self._svms[int(klass)] = svm.fit(features)
        return self

    def install(
        self, klass: int, svm: OneClassSVM, scaler: StandardScaler | None = None
    ) -> None:
        """Install one class's fitted pieces (the fitting pipeline's entry).

        :mod:`repro.core.fitting` solves (layer, class) tasks out of line
        and assembles validators through this rather than :meth:`fit`;
        installing invalidates any cached packed scorer.
        """
        self.__dict__.pop("_pack", None)
        self._svms[int(klass)] = svm
        if scaler is not None:
            self._scalers[int(klass)] = scaler

    def discrepancy(self, representations: np.ndarray, predicted: np.ndarray) -> np.ndarray:
        """Per-sample discrepancy ``d_i = -t_i^{y'}(f_i(x))`` (Eq. 2)."""
        if not self._svms:
            raise RuntimeError("LayerValidator is not fitted")
        representations = np.asarray(representations, dtype=np.float64)
        predicted = np.asarray(predicted)
        if not self.config.per_class:
            predicted = np.zeros(len(predicted), dtype=np.int64)
        values = np.empty(len(representations))
        for klass in np.unique(predicted):
            klass = int(klass)
            if klass not in self._svms:
                raise KeyError(
                    f"no reference SVM for predicted class {klass} in layer "
                    f"{self.layer_name!r}"
                )
            rows = np.flatnonzero(predicted == klass)
            features = representations[rows]
            if self.config.standardize:
                features = self._scalers[klass].transform(features)
            values[rows] = -self._svms[klass].signed_distance(features)
        return values

    # -- batched scoring -------------------------------------------------------

    def packed(self) -> PackedClassSVMs | None:
        """The stacked scorer for this layer, or ``None`` if unpackable.

        Built lazily from the fitted per-class SVMs and cached on the
        instance; dropped on refit and excluded from pickles (old cached
        validators re-pack transparently on first batched call). Custom
        kernel objects the packer does not understand yield ``None`` and
        the batched path falls back to the reference loop.
        """
        if not self._svms:
            raise RuntimeError("LayerValidator is not fitted")
        pack = self.__dict__.get("_pack", _PACK_UNSET)
        if pack is _PACK_UNSET:
            try:
                pack = pack_class_svms(
                    self._svms, self._scalers if self.config.standardize else None
                )
            except ValueError:
                pack = None
            self.__dict__["_pack"] = pack
        return pack

    def discrepancy_batched(
        self,
        representations: np.ndarray,
        predicted: np.ndarray,
        chunk_size: int | None = None,
    ) -> np.ndarray:
        """Per-sample discrepancy via the stacked multi-class scorer.

        Numerically equivalent to :meth:`discrepancy` (the differential
        harness pins agreement at 1e-8) but evaluates one Gram block
        against every class's support vectors at once instead of looping
        over predicted-class groups. ``chunk_size`` bounds the transient
        kernel block's row count.
        """
        pack = self.packed()
        if pack is None:
            return self.discrepancy(representations, predicted)
        representations = np.asarray(representations, dtype=np.float64)
        predicted = np.asarray(predicted)
        if not self.config.per_class:
            predicted = np.zeros(len(predicted), dtype=np.int64)
        try:
            return pack.discrepancy(representations, predicted, chunk_size=chunk_size)
        except KeyError as exc:
            raise KeyError(
                f"{exc.args[0]} in layer {self.layer_name!r}"
            ) from None

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_pack", None)
        return state


@dataclass
class _FitSummary:
    """Bookkeeping from Algorithm 1's data-filtering step."""

    total_training_images: int = 0
    correctly_classified: int = 0
    layers_fitted: list[str] = field(default_factory=list)


class DeepValidator:
    """The joint validator: Deep Validation as deployed (Figure 1).

    Usage::

        validator = DeepValidator(model, ValidatorConfig())
        validator.fit(train_images, train_labels)
        d = validator.joint_discrepancy(test_images)   # Eq. 3
        flags = validator.flag(test_images)            # d > epsilon

    ``config.layers`` selects which probes to validate (e.g. the rear six
    layers of a DenseNet); ``epsilon`` defaults to 0 until calibrated with
    :meth:`calibrate_threshold` or set directly.
    """

    def __init__(self, model: ProbedSequential, config: ValidatorConfig | None = None) -> None:
        self.model = model
        self.config = config if config is not None else ValidatorConfig()
        probe_count = len(model.probe_names)
        if self.config.layers is None:
            self.layer_indices = list(range(probe_count))
        else:
            bad = [i for i in self.config.layers if not 0 <= i < probe_count]
            if bad:
                raise ValueError(
                    f"layer indices {bad} out of range for {probe_count} probes"
                )
            self.layer_indices = list(self.config.layers)
        if self.config.weights is not None and len(self.config.weights) != len(
            self.layer_indices
        ):
            raise ValueError(
                "weights must match the number of validated layers "
                f"({len(self.layer_indices)}), got {len(self.config.weights)}"
            )
        self.validators: list[LayerValidator] = []
        self.epsilon: float = 0.0
        #: Mean |weighted per-layer discrepancy| from calibration; consumed
        #: by degraded-mode rescaling. ``None`` until calibrated.
        self.layer_contributions: np.ndarray | None = None
        self.fit_summary = _FitSummary()

    # -- Algorithm 1 -----------------------------------------------------------

    def fit(
        self,
        train_images: np.ndarray,
        train_labels: np.ndarray,
        chunk_size: int = 256,
        journal=None,
    ) -> "DeepValidator":
        """Fit per-layer validators on correctly classified training images.

        Runs the memory-bounded pipeline of :mod:`repro.core.fitting`:
        representations are extracted in ``chunk_size`` batches (only the
        subsampled training rows are retained per layer) and the
        independent (layer, class) solves are dispatched over
        ``config.n_jobs`` workers. The fitted validator is bit-identical
        for any ``n_jobs``. ``journal`` (a
        :class:`~repro.core.checkpoint.TaskJournal`) makes the solve stage
        crash-safe: completed (layer, class) solutions are flushed as they
        land and replayed on a rerun of the same data and config.
        """
        from repro.core.fitting import fit_deep_validator

        self.__dict__.pop("_engine", None)  # refitting invalidates the engine
        # A refit reports only its own run: stale layer lists and image
        # counts from a previous fit must not accumulate.
        self.fit_summary = _FitSummary()
        train_labels = np.asarray(train_labels)
        predictions = self.model.predict(train_images, batch_size=chunk_size)
        keep = predictions == train_labels
        self.fit_summary.total_training_images = len(train_images)
        self.fit_summary.correctly_classified = int(keep.sum())
        if not self.config.filter_misclassified:
            # Ablation: skip Algorithm 1 line 2 and keep every image.
            keep = np.ones(len(train_images), dtype=bool)
        images = train_images[keep]
        labels = train_labels[keep]

        self.validators = fit_deep_validator(
            self.model,
            images,
            labels,
            self.layer_indices,
            self.config,
            chunk_size=chunk_size,
            n_jobs=getattr(self.config, "n_jobs", 1),
            journal=journal,
        )
        probe_names = self.model.probe_names
        self.fit_summary.layers_fitted = [
            probe_names[layer_index] for layer_index in self.layer_indices
        ]
        return self

    def _check_fitted(self) -> None:
        if not self.validators:
            raise RuntimeError("DeepValidator is not fitted")

    # -- Algorithm 2 -----------------------------------------------------------

    def discrepancies(self, images: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-layer discrepancies for a batch (reference path).

        Returns ``(predictions, D)`` with ``D`` of shape
        ``(len(images), len(validated layers))``.

        This is the paper-faithful per-class-loop implementation and the
        ground truth the differential test harness checks the batched
        engine against; hot callers should go through :meth:`engine`
        instead.
        """
        self._check_fitted()
        images = np.asarray(images)
        if len(images) == 0:
            # Mirror the engine's empty-batch short-circuit so the two
            # paths agree on n=0 without touching the model.
            return np.empty(0, dtype=np.int64), np.empty((0, len(self.validators)))
        probabilities, representations = self.model.hidden_representations(images)
        predictions = probabilities.argmax(axis=1)
        columns = [
            validator.discrepancy(representations[validator.layer_index], predictions)
            for validator in self.validators
        ]
        return predictions, np.stack(columns, axis=1)

    def joint_discrepancy(self, images: np.ndarray) -> np.ndarray:
        """The joint discrepancy ``d`` (Eq. 3, or the configured combiner).

        Routed through the batched :meth:`engine`, so calibration followed
        by flagging of the same images hits the score cache instead of
        paying the forward pass and kernel work twice;
        :meth:`discrepancies` remains the paper-faithful per-class
        reference path (the differential harness pins the two at 1e-8).
        """
        _, per_layer = self.engine().discrepancies(images)
        return self.combine(per_layer)

    def combine(self, per_layer: np.ndarray) -> np.ndarray:
        """Join per-layer discrepancies into a single score per sample."""
        if self.config.weights is not None:
            per_layer = per_layer * np.asarray(self.config.weights)[None, :]
        if self.config.combiner == "sum":
            return per_layer.sum(axis=1)
        if self.config.combiner == "mean":
            return per_layer.mean(axis=1)
        if self.config.combiner == "max":
            return per_layer.max(axis=1)
        return per_layer[:, -1]  # "last"

    # -- deployment ------------------------------------------------------------

    def engine(self, chunk_size: int = 256, cache_size: int = 32):
        """The batched :class:`~repro.core.engine.ValidationEngine` view.

        Built lazily, cached on the instance, dropped on refit and excluded
        from pickles — validators restored from old artifact caches grow an
        engine transparently on first use. Requesting different
        ``chunk_size``/``cache_size`` rebuilds the engine.
        """
        from repro.core.engine import ValidationEngine

        cached = self.__dict__.get("_engine")
        if (
            cached is None
            or cached.chunk_size != chunk_size
            or cached.cache.maxsize != cache_size
        ):
            cached = ValidationEngine(self, chunk_size=chunk_size, cache_size=cache_size)
            self.__dict__["_engine"] = cached
        return cached

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_engine", None)
        return state

    def calibrate_threshold(
        self, clean_images: np.ndarray, corner_images: np.ndarray
    ) -> float:
        """Set ``epsilon`` to the midpoint of the two score centroids.

        The paper's recommendation (Section IV-D3): the centre between the
        centroid of legitimate-image discrepancies and the centroid of
        corner-case discrepancies trades off TPR against FPR. Scores come
        from the batched engine, whose cache makes a subsequent
        :meth:`flag` of the same images free.

        Calibration also records ``layer_contributions`` — the mean
        absolute weighted per-layer discrepancy over both calibration sets
        — which degraded-mode scoring uses to rescale the joint sum when a
        layer validator is skipped (see
        :class:`~repro.core.resilience.DegradedScorer`).
        """
        from repro.core.thresholds import centroid_threshold

        engine = self.engine()
        _, clean_per_layer = engine.discrepancies(clean_images)
        _, corner_per_layer = engine.discrepancies(corner_images)
        stacked = np.concatenate([clean_per_layer, corner_per_layer], axis=0)
        if self.config.weights is not None:
            stacked = stacked * np.asarray(self.config.weights)[None, :]
        self.layer_contributions = np.abs(stacked).mean(axis=0)
        clean = self.combine(clean_per_layer)
        corner = self.combine(corner_per_layer)
        self.epsilon = centroid_threshold(clean, corner)
        return self.epsilon

    def flag(self, images: np.ndarray) -> np.ndarray:
        """Boolean mask of images whose joint discrepancy exceeds epsilon.

        Engine-routed like :meth:`joint_discrepancy`; flagging images that
        were just calibrated on is a cache hit, not a recompute.
        """
        return self.joint_discrepancy(images) > self.epsilon
