"""Resilience layer for the validation serving stack.

Deep Validation's premise is that the *classifier* fails on corner-case
inputs — but a production monitor must also survive failures of its own
substrate: NaN activations from a numerically-broken layer, a scorer that
starts raising, an input that violates the serving contract. This module
provides the three building blocks :class:`~repro.core.monitor.RuntimeMonitor`
composes into a fault-tolerant serving path:

* :class:`InputGuard` — shape/dtype/range/finiteness contract checks that
  turn malformed inputs into structured ``QUARANTINED`` verdicts instead of
  exceptions deep inside the forward pass;
* :class:`CircuitBreaker` — per-layer failure accounting with the classic
  closed → open → half-open lifecycle, so a persistently broken layer
  validator is skipped outright (no latency spent on a known-bad scorer)
  and re-probed after a cooldown;
* :class:`DegradedScorer` — when one or more layer validators are skipped
  or fail, drops those columns from the joint discrepancy and rescales the
  remaining sum (and hence the effective threshold) by the calibrated
  per-layer contributions, so flagging stays meaningful instead of biased
  toward acceptance. With zero layers skipped it defers to
  ``DeepValidator.combine`` unchanged, so the fault-free path is
  bit-identical to normal scoring.

Degraded scoring announces itself with :class:`DegradedModeWarning`
(escalatable to an error via ``REPRO_STRICT=1``, see
:mod:`repro.utils.warnings_`), and every skipped layer is recorded on the
verdict so operators can see partial failure instead of silence.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

#: Verdict statuses (see :class:`~repro.core.monitor.ValidationVerdict`).
VALIDATED = "VALIDATED"
FLAGGED = "FLAGGED"
QUARANTINED = "QUARANTINED"
DEGRADED = "DEGRADED"

#: Every status a verdict can carry.
STATUSES = (VALIDATED, FLAGGED, QUARANTINED, DEGRADED)


class DegradedModeWarning(RuntimeWarning):
    """Emitted when scoring proceeds with one or more layer validators skipped."""


# -- input contract ------------------------------------------------------------


@dataclass
class GuardReport:
    """Structured outcome of :meth:`InputGuard.inspect`.

    ``images`` is the sanitised ``(N, ...)`` batch (``None`` when the batch
    as a whole violates the contract and per-sample recovery is
    impossible); ``batch_reason`` explains a whole-batch rejection;
    ``sample_reasons`` maps the indices of individually quarantined samples
    to human-readable reasons.
    """

    images: np.ndarray | None
    count: int
    batch_reason: str | None = None
    sample_reasons: dict[int, str] = field(default_factory=dict)

    @property
    def ok_mask(self) -> np.ndarray:
        """Boolean mask over the batch of samples that passed every check."""
        mask = np.ones(self.count, dtype=bool)
        if self.batch_reason is not None:
            mask[:] = False
        else:
            for index in self.sample_reasons:
                mask[index] = False
        return mask


class InputGuard:
    """Serving-contract checks applied before any forward pass.

    Parameters
    ----------
    expected_shape:
        Per-image shape (e.g. ``(1, 12, 12)``); ``None`` accepts any.
    value_range:
        Inclusive ``(low, high)`` bounds on pixel values; ``None`` skips
        the check.
    require_finite:
        Quarantine samples containing NaN or Inf (the default — a NaN
        pixel otherwise poisons every downstream activation).
    allowed_kinds:
        Accepted numpy dtype kinds (default: floats, ints, unsigned ints,
        bools). Object/string batches are rejected wholesale.
    """

    def __init__(
        self,
        expected_shape: tuple[int, ...] | None = None,
        value_range: tuple[float, float] | None = None,
        require_finite: bool = True,
        allowed_kinds: str = "fiub",
    ) -> None:
        if value_range is not None and value_range[0] > value_range[1]:
            raise ValueError(f"value_range low > high: {value_range}")
        self.expected_shape = tuple(expected_shape) if expected_shape else None
        self.value_range = value_range
        self.require_finite = require_finite
        self.allowed_kinds = allowed_kinds

    def inspect(self, images) -> GuardReport:
        """Check a batch against the contract; never raises on bad input.

        A 3-D input is promoted to a singleton batch (matching the
        monitor's historical behaviour). Whole-batch violations (wrong
        dtype kind, wrong rank, wrong per-image shape) quarantine every
        sample; value violations (non-finite pixels, out-of-range values)
        quarantine only the offending samples.
        """
        try:
            array = np.asarray(images)
        except Exception as exc:  # noqa: BLE001 — the contract is "never raise"
            return GuardReport(
                None, 1, batch_reason=f"input not convertible to an array: {exc}"
            )
        if array.dtype.kind not in self.allowed_kinds:
            count = len(array) if array.ndim >= 1 else 1
            return GuardReport(
                None, max(count, 1),
                batch_reason=f"unsupported dtype kind {array.dtype!s}",
            )
        if array.ndim == 3:
            array = array[None]
        if array.ndim != 4:
            count = len(array) if array.ndim >= 1 else 1
            return GuardReport(
                None, max(count, 1),
                batch_reason=f"expected a (N, C, H, W) batch, got shape {array.shape}",
            )
        if self.expected_shape is not None and array.shape[1:] != self.expected_shape:
            return GuardReport(
                None, len(array),
                batch_reason=(
                    f"per-image shape {array.shape[1:]} != expected "
                    f"{self.expected_shape}"
                ),
            )
        reasons: dict[int, str] = {}
        if len(array) and array.dtype.kind == "f":
            if self.require_finite:
                finite = np.isfinite(array.reshape(len(array), -1)).all(axis=1)
                for index in np.flatnonzero(~finite):
                    reasons[int(index)] = "non-finite pixel values (NaN/Inf)"
        if len(array) and self.value_range is not None:
            low, high = self.value_range
            flat = array.reshape(len(array), -1)
            with np.errstate(invalid="ignore"):
                bad = (flat < low) | (flat > high)
            for index in np.flatnonzero(bad.any(axis=1)):
                index = int(index)
                if index not in reasons:
                    reasons[index] = f"pixel values outside [{low}, {high}]"
        return GuardReport(array, len(array), sample_reasons=reasons)


# -- per-layer circuit breaking ------------------------------------------------


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a half-open probe.

    Closed: every call is allowed. After ``failure_threshold`` consecutive
    failures the breaker opens: calls are disallowed (the layer is skipped
    without being evaluated) until ``cooldown`` seconds elapse, after which
    the breaker half-opens and allows a single probe — success closes it,
    failure re-opens it and restarts the cooldown.

    ``failure_window`` (optional) turns "consecutive failures" into
    "failures within a sliding window": a failure recorded more than
    ``failure_window`` seconds after the previous one restarts the streak
    at 1 instead of extending it. The serve-layer
    :class:`~repro.serve.supervisor.WorkerSupervisor` uses this to express
    a restart *budget per window* — occasional, widely-spaced worker
    deaths never trip it, a crash loop does.

    ``clock`` is injectable (default ``time.monotonic``) so tests drive
    the lifecycle deterministically. ``on_transition(old, new)`` is an
    optional hook fired on every state change (including the lazy
    open → half-open cooldown transition); the monitor uses it to publish
    breaker state metrics without this module importing the observability
    layer. Hook exceptions propagate — a broken hook is a bug, not a
    serving condition.

    All state reads and mutations are serialised by an internal re-entrant
    lock, so a breaker shared across serving threads counts every failure
    and fires each transition (and its hook) exactly once per state
    change — concurrent ``record_failure`` calls cannot both observe the
    pre-open state and double-open the breaker. The hook runs while the
    lock is held; it must not call back into the same breaker from
    another thread.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str, str], None] | None = None,
        failure_window: float | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        if failure_window is not None and failure_window <= 0:
            raise ValueError(f"failure_window must be > 0, got {failure_window}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.clock = clock
        self.on_transition = on_transition
        self.failure_window = failure_window
        self._lock = threading.RLock()
        self._state = self.CLOSED
        self._opened_at: float | None = None
        self._last_failure_at: float | None = None
        self.failures = 0
        self.successes = 0
        self.consecutive_failures = 0
        self.times_opened = 0

    def _transition(self, new_state: str) -> None:
        old_state = self._state
        self._state = new_state
        if self.on_transition is not None and old_state != new_state:
            self.on_transition(old_state, new_state)

    def _current_state(self) -> str:
        # Caller holds the lock. Lazily transition open -> half-open.
        if self._state == self.OPEN and (
            self.clock() - self._opened_at >= self.cooldown
        ):
            self._transition(self.HALF_OPEN)
        return self._state

    @property
    def state(self) -> str:
        """Current state, transitioning open → half-open once cooled down."""
        with self._lock:
            return self._current_state()

    def allow(self) -> bool:
        """Whether the guarded call should be attempted right now."""
        return self.state != self.OPEN

    def record_success(self) -> None:
        """Note a successful call; closes a half-open breaker."""
        with self._lock:
            self.successes += 1
            self.consecutive_failures = 0
            if self._current_state() == self.HALF_OPEN:
                self._transition(self.CLOSED)
                self._opened_at = None

    def record_failure(self) -> None:
        """Note a failed call; may trip the breaker open."""
        with self._lock:
            now = self.clock()
            if (
                self.failure_window is not None
                and self._last_failure_at is not None
                and now - self._last_failure_at > self.failure_window
            ):
                # The previous streak aged out of the window; this failure
                # starts a new one rather than extending stale history.
                self.consecutive_failures = 0
            self._last_failure_at = now
            self.failures += 1
            self.consecutive_failures += 1
            state = self._current_state()
            if state == self.HALF_OPEN or (
                state == self.CLOSED
                and self.consecutive_failures >= self.failure_threshold
            ):
                self._transition(self.OPEN)
                self._opened_at = self.clock()
                self.times_opened += 1

    def snapshot(self) -> dict:
        """Operator-facing state summary (used by ``RuntimeMonitor.health``).

        Taken under the breaker's lock, so the fields are mutually
        consistent even while serving threads record outcomes.
        """
        with self._lock:
            return {
                "state": self._current_state(),
                "failures": self.failures,
                "successes": self.successes,
                "consecutive_failures": self.consecutive_failures,
                "times_opened": self.times_opened,
            }

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, failures={self.failures}, "
            f"threshold={self.failure_threshold})"
        )


# -- degraded-mode scoring -----------------------------------------------------


class DegradedScorer:
    """Joint-discrepancy combiner that tolerates missing layer columns.

    With no skipped layers this defers to ``DeepValidator.combine`` — the
    fault-free path is bit-identical to normal scoring. With skipped
    layers, the surviving columns are combined and, for the ``"sum"``
    combiner, rescaled by the calibrated per-layer contribution ratio
    ``total / active`` so the degraded sum — and therefore the comparison
    against the unchanged ``epsilon`` — stays commensurable with the
    full-layer score (rescaling the sum up is algebraically identical to
    rescaling the threshold down). ``"mean"``/``"max"`` combine the active
    columns directly; ``"last"`` falls back to the rearmost active layer.

    Calibrated contributions come from
    ``DeepValidator.layer_contributions`` (recorded by
    ``calibrate_threshold`` as the mean absolute weighted per-layer
    discrepancy over the calibration sets); validators calibrated before
    this field existed fall back to uniform contributions.
    """

    def __init__(self, validator) -> None:
        self.validator = validator

    def contributions(self) -> np.ndarray:
        """Per-layer contribution magnitudes (uniform when uncalibrated)."""
        n_layers = len(self.validator.layer_indices)
        recorded = getattr(self.validator, "layer_contributions", None)
        if recorded is not None and len(recorded) == n_layers:
            recorded = np.asarray(recorded, dtype=np.float64)
            if np.all(np.isfinite(recorded)) and recorded.sum() > 0:
                return recorded
        return np.ones(n_layers)

    def combine(
        self, per_layer: np.ndarray, skipped: frozenset[int] | set[int]
    ) -> np.ndarray:
        """Joint discrepancy over the active layers only.

        ``skipped`` holds positions (indices into the validated-layer
        list) excluded from the combination; their columns are ignored
        entirely, so NaN placeholders never leak into the score.
        """
        if not skipped:
            return self.validator.combine(per_layer)
        config = self.validator.config
        n_layers = per_layer.shape[1]
        active = np.array(
            [i for i in range(n_layers) if i not in skipped], dtype=np.intp
        )
        if len(active) == 0:
            return np.full(len(per_layer), np.nan)
        columns = per_layer[:, active]
        if config.weights is not None:
            columns = columns * np.asarray(config.weights)[active][None, :]
        if config.combiner == "sum":
            contributions = self.contributions()
            total = contributions.sum()
            active_total = contributions[active].sum()
            scale = total / active_total if active_total > 0 else (
                n_layers / len(active)
            )
            return columns.sum(axis=1) * scale
        if config.combiner == "mean":
            return columns.mean(axis=1)
        if config.combiner == "max":
            return columns.max(axis=1)
        return columns[:, -1]  # "last": rearmost surviving layer
