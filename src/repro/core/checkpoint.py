"""Crash-safe checkpointing for the offline pipelines.

The serving path became fault-tolerant in the resilience layer; this module
gives the *artifact-producing* pipelines — classifier training, Algorithm 1
fitting, and the experiment CLI — the same discipline. A crash, OOM-kill,
or power cut at epoch 39/40 must cost one epoch, not the whole run, and a
resumed run must be **bit-identical** to an uninterrupted one (the same
contract the parallel-fitting layer makes for worker counts).

Two primitives, both following :class:`~repro.utils.cache.ArtifactCache`
conventions (stage to a uniquely-named temp file, ``os.replace`` into
place, sha256 sidecar verified on read, corrupt entries quarantined):

* :class:`CheckpointStore` — atomic whole-state snapshots. ``save`` never
  leaves a torn checkpoint (the previous snapshot survives any crash
  mid-write) and ``load_or_none`` treats a corrupt snapshot as absent, so
  a resume after the worst-case crash simply restarts the interrupted
  stage from the last good snapshot.
* :class:`TaskJournal` — an append-only, per-record-checksummed journal
  for pipelines made of many small independent results (the ``(layer,
  class)`` solves of Algorithm 1, the per-experiment reports of the CLI).
  Each record is framed with its length and sha256 digest and fsynced on
  append; :meth:`TaskJournal.replay` returns every intact record and
  silently drops a torn tail — exactly the record that was mid-write when
  the process died.

Checkpoints capture RNG bit-state via :func:`repro.utils.rng.get_rng_state`
/ :func:`~repro.utils.rng.set_rng_state`, which is what makes resume
bit-identical rather than merely approximate: the restored generator
continues the exact stream the interrupted run would have drawn.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
import struct
import uuid
from pathlib import Path
from typing import Any, Iterator


class CheckpointError(RuntimeError):
    """Base class for checkpoint-store failures."""


class CheckpointIntegrityError(CheckpointError):
    """A checkpoint or journal record failed its checksum verification."""


_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: Journal frame header: 8-byte big-endian payload length + 32-byte sha256.
_FRAME_HEADER = struct.Struct(">Q32s")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"checkpoint name must match {_NAME_RE.pattern}, got {name!r}"
        )
    return name


def _atomic_write(path: Path, payload: bytes) -> None:
    """Stage ``payload`` to a unique temp file, fsync, and rename into place."""
    tmp = path.with_name(f"{path.name}.{os.getpid()}-{uuid.uuid4().hex}.tmp")
    try:
        with open(tmp, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # only on a failed write; replace consumed it
            tmp.unlink()


class CheckpointStore:
    """Atomic, integrity-checked snapshots of arbitrary picklable state.

    Keys are flat names; each snapshot is a pickle plus a ``.sha256``
    sidecar. Writes are atomic (temp + ``os.replace``), so a crash during
    ``save`` leaves the *previous* snapshot intact — the store never holds
    a torn checkpoint under its official name. Reads verify the sidecar
    before unpickling; a corrupt entry is quarantined for post-mortem
    rather than half-loaded.
    """

    #: Subdirectory (under the store root) that corrupt entries are moved to.
    QUARANTINE_DIR = ".quarantine"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, name: str) -> Path:
        """On-disk path of the snapshot called ``name``."""
        return self.root / f"{_check_name(name)}.ckpt"

    def checksum_path_for(self, name: str) -> Path:
        """Path of the checksum sidecar written beside each snapshot."""
        path = self.path_for(name)
        return path.with_name(path.name + ".sha256")

    def exists(self, name: str) -> bool:
        """Whether a snapshot called ``name`` is present."""
        return self.path_for(name).exists()

    def save(self, name: str, state: Any) -> None:
        """Atomically snapshot ``state`` under ``name``.

        The pickle is staged and renamed first, then the sidecar: a crash
        between the two leaves a snapshot whose sidecar is stale, which
        :meth:`load` rejects (and quarantines) — fail-safe in the same
        direction as a torn write.
        """
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        _atomic_write(self.path_for(name), payload)
        digest = hashlib.sha256(payload).hexdigest()
        _atomic_write(self.checksum_path_for(name), (digest + "\n").encode())

    def load(self, name: str) -> Any:
        """Verify and unpickle the snapshot called ``name``.

        Raises :class:`FileNotFoundError` if absent, and
        :class:`CheckpointIntegrityError` (after quarantining the entry)
        if the sidecar is missing or the bytes fail verification.
        """
        path = self.path_for(name)
        payload = path.read_bytes()
        sidecar = self.checksum_path_for(name)
        if not sidecar.exists():
            self.quarantine(name)
            raise CheckpointIntegrityError(
                f"{path.name}: checksum sidecar missing; entry quarantined"
            )
        expected = sidecar.read_text().strip()
        actual = hashlib.sha256(payload).hexdigest()
        if actual != expected:
            self.quarantine(name)
            raise CheckpointIntegrityError(
                f"{path.name}: checksum mismatch (expected {expected[:12]}…, "
                f"got {actual[:12]}…); entry quarantined"
            )
        return pickle.loads(payload)

    def load_or_none(self, name: str) -> Any:
        """The resume entry point: the snapshot, or ``None`` if unusable.

        A missing snapshot means "start fresh"; a corrupt one is
        quarantined and likewise treated as absent — resuming from
        damaged state would break the bit-identity contract, so the
        caller restarts the stage instead.
        """
        if not self.exists(name):
            return None
        try:
            return self.load(name)
        except CheckpointIntegrityError:
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError, ImportError):
            self.quarantine(name)
            return None

    def discard(self, name: str) -> bool:
        """Remove the snapshot for ``name``; returns whether one existed."""
        sidecar = self.checksum_path_for(name)
        if sidecar.exists():
            sidecar.unlink()
        path = self.path_for(name)
        if path.exists():
            path.unlink()
            return True
        return False

    def quarantine(self, name: str) -> Path | None:
        """Move a corrupt snapshot (and sidecar) into ``.quarantine/``."""
        path = self.path_for(name)
        if not path.exists():
            return None
        hole = self.root / self.QUARANTINE_DIR
        hole.mkdir(parents=True, exist_ok=True)
        token = f"{os.getpid()}-{uuid.uuid4().hex[:8]}"
        destination = hole / f"{path.name}.{token}"
        os.replace(path, destination)
        sidecar = self.checksum_path_for(name)
        if sidecar.exists():
            os.replace(sidecar, hole / f"{sidecar.name}.{token}")
        return destination

    def journal(self, name: str) -> "TaskJournal":
        """The append-only journal called ``name`` inside this store."""
        return TaskJournal(self.root / f"{_check_name(name)}.journal")


class TaskJournal:
    """An append-only journal of picklable records, safe against torn tails.

    Each :meth:`append` writes one self-verifying frame — payload length,
    sha256 digest, pickled payload — and fsyncs it, so a record either
    lands completely or not at all from the reader's point of view.
    :meth:`replay` yields every intact record in append order and stops at
    a torn tail (the frame that was mid-write when the process died); a
    *complete* frame whose digest fails is storage rot, not a crash, and
    raises :class:`CheckpointIntegrityError` instead of silently dropping
    every record after it.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def exists(self) -> bool:
        """Whether any journal file is present on disk."""
        return self.path.exists()

    def append(self, record: Any) -> None:
        """Durably append one record (length + digest + pickle, fsynced)."""
        payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        frame = _FRAME_HEADER.pack(len(payload), hashlib.sha256(payload).digest())
        with open(self.path, "ab") as fh:
            fh.write(frame + payload)
            fh.flush()
            os.fsync(fh.fileno())

    def replay(self) -> list[Any]:
        """Every intact record, in append order; a torn tail is dropped."""
        return list(self.iter_records())

    def iter_records(self) -> Iterator[Any]:
        """Yield intact records lazily; see :meth:`replay`."""
        if not self.path.exists():
            return
        with open(self.path, "rb") as fh:
            while True:
                header = fh.read(_FRAME_HEADER.size)
                if len(header) == 0:
                    return  # clean end of journal
                if len(header) < _FRAME_HEADER.size:
                    return  # torn tail: header itself was mid-write
                length, digest = _FRAME_HEADER.unpack(header)
                payload = fh.read(length)
                if len(payload) < length:
                    return  # torn tail: payload was mid-write
                if hashlib.sha256(payload).digest() != digest:
                    raise CheckpointIntegrityError(
                        f"{self.path.name}: journal record failed its checksum "
                        "(storage corruption, not a torn write)"
                    )
                yield pickle.loads(payload)

    def __len__(self) -> int:
        return len(self.replay())

    def clear(self) -> bool:
        """Delete the journal file; returns whether one existed."""
        if self.path.exists():
            self.path.unlink()
            return True
        return False


def default_checkpoint_store() -> CheckpointStore:
    """The repository-wide store: ``$REPRO_CHECKPOINT_DIR`` or
    ``.checkpoints/`` under the artifact-cache root (so relocating the
    cache with ``REPRO_CACHE_DIR`` relocates the checkpoints with it)."""
    root = os.environ.get("REPRO_CHECKPOINT_DIR")
    if root is None:
        from repro.utils.cache import default_cache

        return CheckpointStore(default_cache().root / ".checkpoints")
    return CheckpointStore(root)
