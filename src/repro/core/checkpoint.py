"""Crash-safe checkpointing for the offline pipelines.

The serving path became fault-tolerant in the resilience layer; this module
gives the *artifact-producing* pipelines — classifier training, Algorithm 1
fitting, and the experiment CLI — the same discipline. A crash, OOM-kill,
or power cut at epoch 39/40 must cost one epoch, not the whole run, and a
resumed run must be **bit-identical** to an uninterrupted one (the same
contract the parallel-fitting layer makes for worker counts).

Two primitives, both following :class:`~repro.utils.cache.ArtifactCache`
conventions (stage to a uniquely-named temp file, ``os.replace`` into
place, sha256 verified on read, corrupt entries quarantined):

* :class:`CheckpointStore` — atomic whole-state snapshots. Each snapshot
  is one self-verifying file (length + sha256 + pickle, the same framing
  journal records use) that lands in a single ``os.replace``, so ``save``
  never leaves a torn checkpoint (the previous snapshot survives any
  crash mid-write — there is no separate integrity file that could land
  out of step with the payload) and ``load_or_none`` treats a corrupt
  snapshot as absent, so a resume after the worst-case crash simply
  restarts the interrupted stage from the last good snapshot.
* :class:`TaskJournal` — an append-only, per-record-checksummed journal
  for pipelines made of many small independent results (the ``(layer,
  class)`` solves of Algorithm 1, the per-experiment reports of the CLI).
  Each record is framed with its length and sha256 digest and fsynced on
  append; :meth:`TaskJournal.replay` returns every intact record and
  silently drops a torn tail — exactly the record that was mid-write when
  the process died.

Checkpoints capture RNG bit-state via :func:`repro.utils.rng.get_rng_state`
/ :func:`~repro.utils.rng.set_rng_state`, which is what makes resume
bit-identical rather than merely approximate: the restored generator
continues the exact stream the interrupted run would have drawn.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
import struct
import uuid
from pathlib import Path
from typing import Any, Iterator

from repro import obs


def _loads_counter():
    return obs.counter(
        "checkpoint_loads_total",
        help="Checkpoint snapshot reads by outcome",
        labels=("result",),
    )


class CheckpointError(RuntimeError):
    """Base class for checkpoint-store failures."""


class CheckpointIntegrityError(CheckpointError):
    """A checkpoint or journal record failed its checksum verification."""


_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: Frame header (checkpoints and journal records alike): 8-byte big-endian
#: payload length + 32-byte sha256.
_FRAME_HEADER = struct.Struct(">Q32s")

#: First element of the frame a journal header is wrapped in; see
#: :meth:`TaskJournal.write_header`.
_HEADER_SENTINEL = "__task-journal-header__"


def _frame(payload: bytes) -> bytes:
    """One self-verifying frame: length + digest + payload."""
    return _FRAME_HEADER.pack(len(payload), hashlib.sha256(payload).digest()) + payload


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"checkpoint name must match {_NAME_RE.pattern}, got {name!r}"
        )
    return name


def _atomic_write(path: Path, payload: bytes) -> None:
    """Stage ``payload`` to a unique temp file, fsync, and rename into place."""
    tmp = path.with_name(f"{path.name}.{os.getpid()}-{uuid.uuid4().hex}.tmp")
    try:
        with open(tmp, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # only on a failed write; replace consumed it
            tmp.unlink()


class CheckpointStore:
    """Atomic, integrity-checked snapshots of arbitrary picklable state.

    Keys are flat names; each snapshot is a single self-verifying file —
    the pickle framed with its length and sha256 digest. Writes are atomic
    (temp + ``os.replace``), and because the digest travels inside the
    same file there is no crash window in which a good snapshot's payload
    and integrity record diverge: the store always holds either the
    previous complete snapshot or the new one. Reads verify the embedded
    digest before unpickling; a corrupt entry is quarantined for
    post-mortem rather than half-loaded.
    """

    #: Subdirectory (under the store root) that corrupt entries are moved to.
    QUARANTINE_DIR = ".quarantine"

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, name: str) -> Path:
        """On-disk path of the snapshot called ``name``."""
        return self.root / f"{_check_name(name)}.ckpt"

    def exists(self, name: str) -> bool:
        """Whether a snapshot called ``name`` is present."""
        return self.path_for(name).exists()

    def save(self, name: str, state: Any) -> None:
        """Atomically snapshot ``state`` under ``name``.

        Payload and digest are framed into one file and renamed into
        place in a single ``os.replace`` — a crash at any instant leaves
        either the previous snapshot or the complete new one, never a
        payload whose integrity record is out of step.
        """
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        _atomic_write(self.path_for(name), _frame(payload))
        obs.counter(
            "checkpoint_saves_total", help="Checkpoint snapshots written"
        ).inc()

    def load(self, name: str) -> Any:
        """Verify and unpickle the snapshot called ``name``.

        Raises :class:`FileNotFoundError` if absent, and
        :class:`CheckpointIntegrityError` (after quarantining the entry)
        if the frame is truncated or the bytes fail verification.
        """
        path = self.path_for(name)
        blob = path.read_bytes()
        if len(blob) < _FRAME_HEADER.size:
            self.quarantine(name)
            _loads_counter().labels(result="corrupt").inc()
            raise CheckpointIntegrityError(
                f"{path.name}: truncated checkpoint frame; entry quarantined"
            )
        length, digest = _FRAME_HEADER.unpack(blob[: _FRAME_HEADER.size])
        payload = blob[_FRAME_HEADER.size :]
        if len(payload) != length or hashlib.sha256(payload).digest() != digest:
            self.quarantine(name)
            _loads_counter().labels(result="corrupt").inc()
            raise CheckpointIntegrityError(
                f"{path.name}: checksum mismatch; entry quarantined"
            )
        state = pickle.loads(payload)
        _loads_counter().labels(result="ok").inc()
        return state

    def load_or_none(self, name: str) -> Any:
        """The resume entry point: the snapshot, or ``None`` if unusable.

        A missing snapshot means "start fresh"; a corrupt one is
        quarantined and likewise treated as absent — resuming from
        damaged state would break the bit-identity contract, so the
        caller restarts the stage instead.
        """
        if not self.exists(name):
            return None
        try:
            return self.load(name)
        except CheckpointIntegrityError:
            return None
        except (pickle.UnpicklingError, EOFError, AttributeError, ImportError):
            self.quarantine(name)
            return None

    def discard(self, name: str) -> bool:
        """Remove the snapshot for ``name``; returns whether one existed."""
        path = self.path_for(name)
        if path.exists():
            path.unlink()
            return True
        return False

    def quarantine(self, name: str) -> Path | None:
        """Move a corrupt snapshot into ``.quarantine/`` for post-mortem."""
        path = self.path_for(name)
        if not path.exists():
            return None
        hole = self.root / self.QUARANTINE_DIR
        hole.mkdir(parents=True, exist_ok=True)
        token = f"{os.getpid()}-{uuid.uuid4().hex[:8]}"
        destination = hole / f"{path.name}.{token}"
        os.replace(path, destination)
        obs.counter(
            "checkpoint_quarantines_total",
            help="Corrupt checkpoint snapshots moved to quarantine",
        ).inc()
        return destination

    def journal(self, name: str) -> "TaskJournal":
        """The append-only journal called ``name`` inside this store."""
        return TaskJournal(self.root / f"{_check_name(name)}.journal")


class TaskJournal:
    """An append-only journal of picklable records, safe against torn tails.

    Each :meth:`append` writes one self-verifying frame — payload length,
    sha256 digest, pickled payload — and fsyncs it, so a record either
    lands completely or not at all from the reader's point of view.
    :meth:`replay` yields every intact record in append order and stops at
    a torn tail (the frame that was mid-write when the process died); a
    *complete* frame whose digest fails is storage rot, not a crash, and
    raises :class:`CheckpointIntegrityError` instead of silently dropping
    every record after it.

    A journal may additionally carry a *header* — an identity stamp
    (:meth:`write_header` / :meth:`header`) written as frame 0 of a fresh
    journal and excluded from :meth:`replay`. Resumable pipelines store a
    fingerprint of the config/data their records were computed from, so a
    stale journal under a reused name is detected and discarded instead
    of silently replayed into a run it does not belong to.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def exists(self) -> bool:
        """Whether any journal file is present on disk."""
        return self.path.exists()

    def append(self, record: Any) -> None:
        """Durably append one record (length + digest + pickle, fsynced)."""
        payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        with open(self.path, "ab") as fh:
            fh.write(_frame(payload))
            fh.flush()
            os.fsync(fh.fileno())
        obs.counter(
            "journal_appends_total", help="Journal records durably appended"
        ).inc()

    def write_header(self, header: Any) -> None:
        """Stamp ``header`` as frame 0 of a *fresh* journal.

        The header identifies what the journal's records were computed
        from (callers typically store a config/data fingerprint) and is
        skipped by :meth:`replay`. Stamping an existing journal would
        misattribute its records, so that raises :class:`CheckpointError`
        — :meth:`clear` first.
        """
        if self.path.exists():
            raise CheckpointError(
                f"{self.path.name}: cannot stamp a header onto an existing "
                "journal; clear() it first"
            )
        self.append((_HEADER_SENTINEL, header))

    def header(self) -> Any:
        """Frame 0's header value, or ``None`` if the journal has none."""
        for record in self._iter_frames():
            if self._is_header(record):
                return record[1]
            return None
        return None

    @staticmethod
    def _is_header(record: Any) -> bool:
        return (
            isinstance(record, tuple)
            and len(record) == 2
            and record[0] == _HEADER_SENTINEL
        )

    def replay(self) -> list[Any]:
        """Every intact record, in append order; a torn tail is dropped."""
        return list(self.iter_records())

    def iter_records(self) -> Iterator[Any]:
        """Yield intact records lazily, skipping any header frame."""
        replayed = obs.counter(
            "journal_replayed_records_total",
            help="Intact journal records yielded by replay",
        )
        for index, record in enumerate(self._iter_frames()):
            if index == 0 and self._is_header(record):
                continue
            replayed.inc()
            yield record

    def _iter_frames(self) -> Iterator[Any]:
        """Yield every intact frame (header included); see :meth:`replay`."""
        if not self.path.exists():
            return
        with open(self.path, "rb") as fh:
            while True:
                header = fh.read(_FRAME_HEADER.size)
                if len(header) == 0:
                    return  # clean end of journal
                if len(header) < _FRAME_HEADER.size:
                    return  # torn tail: header itself was mid-write
                length, digest = _FRAME_HEADER.unpack(header)
                payload = fh.read(length)
                if len(payload) < length:
                    return  # torn tail: payload was mid-write
                if hashlib.sha256(payload).digest() != digest:
                    raise CheckpointIntegrityError(
                        f"{self.path.name}: journal record failed its checksum "
                        "(storage corruption, not a torn write)"
                    )
                yield pickle.loads(payload)

    def __len__(self) -> int:
        return len(self.replay())

    def clear(self) -> bool:
        """Delete the journal file; returns whether one existed."""
        if self.path.exists():
            self.path.unlink()
            return True
        return False


def default_checkpoint_store() -> CheckpointStore:
    """The repository-wide store: ``$REPRO_CHECKPOINT_DIR`` or
    ``.checkpoints/`` under the artifact-cache root (so relocating the
    cache with ``REPRO_CACHE_DIR`` relocates the checkpoints with it)."""
    root = os.environ.get("REPRO_CHECKPOINT_DIR")
    if root is None:
        from repro.utils.cache import default_cache

        return CheckpointStore(default_cache().root / ".checkpoints")
    return CheckpointStore(root)
