"""Runtime monitoring façade: the fail-safe deployment wrapper.

The paper motivates Deep Validation as a fail-safe building block: when the
joint discrepancy of an input exceeds the threshold, the system should
withhold the classifier's decision and call for human intervention. This
module packages that behaviour behind a single ``classify`` call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.validator import DeepValidator


@dataclass
class ValidationVerdict:
    """Outcome of classifying one image under runtime validation."""

    prediction: int
    joint_discrepancy: float
    per_layer: np.ndarray
    accepted: bool

    def __repr__(self) -> str:
        status = "accepted" if self.accepted else "REJECTED"
        return (
            f"ValidationVerdict(prediction={self.prediction}, "
            f"d={self.joint_discrepancy:.4f}, {status})"
        )


class RuntimeMonitor:
    """Wraps a fitted :class:`DeepValidator` into a guarded classifier.

    Parameters
    ----------
    validator:
        A fitted ``DeepValidator`` with a calibrated ``epsilon``.
    on_reject:
        Optional callback invoked with each rejected verdict — the hook for
        human intervention / fail-safe handling.
    """

    def __init__(
        self,
        validator: DeepValidator,
        on_reject: Callable[[ValidationVerdict], None] | None = None,
    ) -> None:
        self.validator = validator
        self.on_reject = on_reject
        self.stats = {"accepted": 0, "rejected": 0}

    def classify(self, images: np.ndarray) -> list[ValidationVerdict]:
        """Classify a batch, validating every internal state (Figure 1).

        Scoring goes through the batched
        :class:`~repro.core.engine.ValidationEngine`, so monitoring
        traffic pays one stacked kernel evaluation per layer regardless of
        batch size, and replayed windows hit the engine's score cache.
        """
        images = np.asarray(images)
        if images.ndim == 3:
            images = images[None]
        predictions, per_layer = self.validator.engine().discrepancies(images)
        joints = self.validator.combine(per_layer)
        verdicts = []
        for prediction, row, joint in zip(predictions, per_layer, joints):
            accepted = bool(joint <= self.validator.epsilon)
            verdict = ValidationVerdict(
                prediction=int(prediction),
                joint_discrepancy=float(joint),
                per_layer=row,
                accepted=accepted,
            )
            self.stats["accepted" if accepted else "rejected"] += 1
            if not accepted and self.on_reject is not None:
                self.on_reject(verdict)
            verdicts.append(verdict)
        return verdicts

    @property
    def rejection_rate(self) -> float:
        total = self.stats["accepted"] + self.stats["rejected"]
        if total == 0:
            raise ValueError("no images classified yet")
        return self.stats["rejected"] / total
