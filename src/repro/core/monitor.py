"""Runtime monitoring façade: the fail-safe deployment wrapper.

The paper motivates Deep Validation as a fail-safe building block: when the
joint discrepancy of an input exceeds the threshold, the system should
withhold the classifier's decision and call for human intervention. This
module packages that behaviour behind a single ``classify`` call — and
makes the wrapper itself fail-safe. A production monitor must be at least
as robust as the classifier it guards, so ``classify`` never raises on bad
inputs or a partially broken scoring substrate:

* malformed inputs (wrong shape/dtype, NaN pixels, out-of-range values)
  are intercepted by an :class:`~repro.core.resilience.InputGuard` and
  returned as structured ``QUARANTINED`` verdicts;
* a layer validator that raises or produces non-finite discrepancies is
  dropped from the joint score for that batch (``DEGRADED`` verdicts, with
  the skipped layers recorded) and its failures feed a per-layer
  :class:`~repro.core.resilience.CircuitBreaker` — persistently broken
  layers are skipped without being evaluated until a cooldown expires;
* if every layer is unavailable, or the forward pass itself fails, the
  batch is quarantined — fail-safe rejection, never an unhandled
  exception.

Operators observe partial failure through :meth:`RuntimeMonitor.health`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import obs
from repro.core import resilience
from repro.core.resilience import (
    CircuitBreaker,
    DegradedModeWarning,
    DegradedScorer,
    InputGuard,
)
from repro.core.validator import DeepValidator
from repro.utils.warnings_ import emit_warning

#: Numeric encoding of breaker states for the ``monitor_breaker_state`` gauge.
BREAKER_STATE_CODES = {
    CircuitBreaker.CLOSED: 0,
    CircuitBreaker.HALF_OPEN: 1,
    CircuitBreaker.OPEN: 2,
}


def _verdicts_counter():
    return obs.counter(
        "monitor_verdicts_total",
        help="Verdicts issued by the runtime monitor, by status",
        labels=("status",),
    )


def _breaker_state_gauge():
    return obs.gauge(
        "monitor_breaker_state",
        help="Per-layer circuit-breaker state (0=closed, 1=half-open, 2=open)",
        labels=("layer",),
    )


@dataclass
class ValidationVerdict:
    """Outcome of classifying one image under runtime validation.

    ``status`` is one of ``VALIDATED`` (scored on every layer, accepted),
    ``FLAGGED`` (scored on every layer, joint discrepancy above epsilon),
    ``DEGRADED`` (scored with one or more layer validators skipped —
    ``accepted`` still carries the rescaled accept/flag decision and
    ``skipped_layers`` names the missing columns), or ``QUARANTINED``
    (not scored at all; ``prediction`` is ``-1``, ``joint_discrepancy``
    is NaN, and ``reason`` explains why). ``accepted`` is ``True`` only
    when the input was actually scored and fell below the threshold.

    The serving layer extends the vocabulary with queue-level statuses
    (``OVERLOADED`` / ``EXPIRED``) and may attach machine-readable
    context under ``detail`` (e.g. the projected queue wait that caused a
    load-shedding rejection); monitor-issued verdicts leave it ``None``.
    """

    prediction: int
    joint_discrepancy: float
    per_layer: np.ndarray
    accepted: bool
    status: str = resilience.VALIDATED
    skipped_layers: tuple[str, ...] = ()
    reason: str | None = None
    detail: dict | None = None

    def __repr__(self) -> str:
        label = "accepted" if self.accepted else "REJECTED"
        extra = ""
        if self.status not in (resilience.VALIDATED, resilience.FLAGGED):
            extra = f", status={self.status}"
        return (
            f"ValidationVerdict(prediction={self.prediction}, "
            f"d={self.joint_discrepancy:.4f}, {label}{extra})"
        )


@dataclass
class _LayerHealth:
    """Per-layer failure bookkeeping surfaced by ``RuntimeMonitor.health``."""

    breaker: CircuitBreaker
    last_error: str | None = None
    skipped_batches: int = 0


class RuntimeMonitor:
    """Wraps a fitted :class:`DeepValidator` into a guarded classifier.

    The monitor is thread-safe: any number of serving threads (e.g. the
    :mod:`repro.serve` worker pool) may call :meth:`classify`
    concurrently. Verdict tallies, the lazily-built per-layer breaker
    registry, and breaker state transitions are serialised by locks held
    only around bookkeeping — the forward pass and kernel scoring run
    unlocked, so concurrent batches overlap. :meth:`health` returns an
    atomic snapshot.

    Parameters
    ----------
    validator:
        A fitted ``DeepValidator`` with a calibrated ``epsilon``.
    on_reject:
        Optional callback invoked with each rejected (flagged, degraded-
        rejected, or quarantined) verdict — the hook for human
        intervention / fail-safe handling.
    guard:
        Input-contract checks applied before the forward pass. Defaults to
        a permissive :class:`InputGuard` (numeric dtype, 4-D batch,
        finite values); pass a configured guard to pin shape and range.
    breaker_threshold / breaker_cooldown / clock:
        Per-layer circuit-breaker tuning: consecutive failures before a
        layer is open-circuited, seconds before a half-open re-probe, and
        an injectable monotonic clock for deterministic tests.
    """

    def __init__(
        self,
        validator: DeepValidator,
        on_reject: Callable[[ValidationVerdict], None] | None = None,
        guard: InputGuard | None = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 30.0,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.validator = validator
        self.on_reject = on_reject
        self.guard = guard if guard is not None else InputGuard()
        self.scorer = DegradedScorer(validator)
        self._clock = clock if clock is not None else time.monotonic
        self._breaker_threshold = breaker_threshold
        self._breaker_cooldown = breaker_cooldown
        # Guards the verdict tallies, the lazy breaker registry, and the
        # per-layer bookkeeping. Scoring itself (forward pass + kernels)
        # runs outside the lock, so concurrent batches overlap freely.
        self._lock = threading.RLock()
        self._layers: dict[int, _LayerHealth] = {}
        self.stats = {
            "accepted": 0,
            "rejected": 0,
            "quarantined": 0,
            "degraded": 0,
        }

    # -- internals -------------------------------------------------------------

    def _layer_health(self, position: int) -> _LayerHealth:
        # Lock-free fast path: dict reads are safe, and an entry, once
        # installed, is never replaced.
        health = self._layers.get(position)
        if health is not None:
            return health
        with self._lock:
            health = self._layers.get(position)
            if health is not None:
                # Another thread won the first-touch race; its breaker and
                # gauge registration stand — creating a second breaker here
                # would split failure counts across two objects.
                return health
            name = self._layer_name(position)

            def publish(old_state: str, new_state: str, layer: str = name) -> None:
                obs.counter(
                    "monitor_breaker_transitions_total",
                    help="Circuit-breaker state transitions per layer",
                    labels=("layer", "to"),
                ).labels(layer=layer, to=new_state).inc()
                _breaker_state_gauge().labels(layer=layer).set(
                    BREAKER_STATE_CODES[new_state]
                )

            health = _LayerHealth(
                CircuitBreaker(
                    failure_threshold=self._breaker_threshold,
                    cooldown=self._breaker_cooldown,
                    clock=self._clock,
                    on_transition=publish,
                )
            )
            _breaker_state_gauge().labels(layer=name).set(
                BREAKER_STATE_CODES[CircuitBreaker.CLOSED]
            )
            self._layers[position] = health
            return health

    def _layer_name(self, position: int) -> str:
        validators = self.validator.validators
        if position < len(validators):
            return validators[position].layer_name
        return f"layer{position}"

    def _quarantine_verdict(self, reason: str) -> ValidationVerdict:
        n_layers = max(len(self.validator.validators), 1)
        return ValidationVerdict(
            prediction=-1,
            joint_discrepancy=float("nan"),
            per_layer=np.full(n_layers, np.nan),
            accepted=False,
            status=resilience.QUARANTINED,
            reason=reason,
        )

    def _finish(self, verdict: ValidationVerdict) -> ValidationVerdict:
        _verdicts_counter().labels(status=verdict.status).inc()
        with self._lock:
            # Both increments of a degraded verdict land under one lock
            # hold, so health() can never observe the tallies mid-update.
            if verdict.status == resilience.QUARANTINED:
                self.stats["quarantined"] += 1
            else:
                if verdict.status == resilience.DEGRADED:
                    self.stats["degraded"] += 1
                self.stats["accepted" if verdict.accepted else "rejected"] += 1
        # The rejection hook runs outside the lock: a slow or re-entrant
        # callback must not stall other serving threads' bookkeeping.
        if not verdict.accepted and self.on_reject is not None:
            self.on_reject(verdict)
        return verdict

    # -- serving ---------------------------------------------------------------

    def classify(self, images: np.ndarray) -> list[ValidationVerdict]:
        """Classify a batch, validating every internal state (Figure 1).

        Scoring goes through the batched
        :class:`~repro.core.engine.ValidationEngine`'s fault-isolated
        path, so monitoring traffic pays one stacked kernel evaluation
        per healthy layer regardless of batch size, replayed windows hit
        the engine's score cache, and a broken layer or malformed input
        degrades the verdict instead of raising. Verdicts come back in
        input order, one per image.
        """
        with obs.span("monitor.classify") as span:
            report = self.guard.inspect(images)
            span.set(batch=report.count)
            if report.batch_reason is not None:
                return [
                    self._finish(self._quarantine_verdict(report.batch_reason))
                    for _ in range(report.count)
                ]
            batch = report.images
            ok_mask = report.ok_mask
            scored = self._score(batch[ok_mask]) if ok_mask.any() else []
            verdicts: list[ValidationVerdict] = []
            scored_iter = iter(scored)
            for index in range(report.count):
                if index in report.sample_reasons:
                    verdicts.append(
                        self._finish(
                            self._quarantine_verdict(report.sample_reasons[index])
                        )
                    )
                else:
                    verdicts.append(self._finish(next(scored_iter)))
            return verdicts

    def _score(self, images: np.ndarray) -> list[ValidationVerdict]:
        """Score guard-approved images, isolating substrate failures."""
        n_layers = len(self.validator.validators)
        skip = {
            position
            for position in range(n_layers)
            if not self._layer_health(position).breaker.allow()
        }
        with self._lock:
            for position in skip:
                self._layers[position].skipped_batches += 1
        try:
            predictions, per_layer, errors = (
                self.validator.engine().discrepancies_resilient(images, skip=skip)
            )
        except Exception as exc:  # noqa: BLE001 — fail-safe, never raise
            emit_warning(
                f"validation scoring failed wholesale ({type(exc).__name__}: "
                f"{exc}); quarantining the batch",
                DegradedModeWarning,
            )
            return [
                self._quarantine_verdict(
                    f"scoring failed: {type(exc).__name__}: {exc}"
                )
                for _ in range(len(images))
            ]

        # A layer that raised, or whose column contains non-finite values
        # (e.g. NaN activations upstream), failed for this batch.
        failed: set[int] = set(errors)
        for position in range(n_layers):
            if position in skip or position in errors:
                continue
            if not np.isfinite(per_layer[:, position]).all():
                failed.add(position)
        for position in range(n_layers):
            health = self._layer_health(position)
            if position in skip:
                continue
            if position in failed:
                error = errors.get(position)
                health.last_error = (
                    f"{type(error).__name__}: {error}"
                    if error is not None
                    else "non-finite discrepancies"
                )
                health.breaker.record_failure()
            else:
                health.breaker.record_success()

        dropped = skip | failed
        if dropped:
            names = tuple(sorted(self._layer_name(p) for p in dropped))
            if len(dropped) >= n_layers:
                emit_warning(
                    f"all {n_layers} layer validators unavailable "
                    f"({', '.join(names)}); quarantining the batch",
                    DegradedModeWarning,
                )
                return [
                    self._quarantine_verdict("no healthy layer validators")
                    for _ in range(len(images))
                ]
            emit_warning(
                "degraded-mode scoring: skipped layer validators "
                f"{', '.join(names)}",
                DegradedModeWarning,
            )
        else:
            names = ()

        joints = self.scorer.combine(per_layer, frozenset(dropped))
        verdicts = []
        for prediction, row, joint in zip(predictions, per_layer, joints):
            accepted = bool(joint <= self.validator.epsilon)
            if dropped:
                status = resilience.DEGRADED
            else:
                status = resilience.VALIDATED if accepted else resilience.FLAGGED
            verdicts.append(
                ValidationVerdict(
                    prediction=int(prediction),
                    joint_discrepancy=float(joint),
                    per_layer=row,
                    accepted=accepted,
                    status=status,
                    skipped_layers=names,
                )
            )
        return verdicts

    # -- observability ---------------------------------------------------------

    @property
    def rejection_rate(self) -> float:
        """Fraction of *scored* inputs rejected; NaN before any scoring.

        Quarantined inputs are excluded — they were never scored, and are
        tallied separately under ``stats["quarantined"]``. Returns
        ``float("nan")`` (rather than raising) when nothing has been
        scored yet, so dashboards can poll it unconditionally.
        """
        with self._lock:
            total = self.stats["accepted"] + self.stats["rejected"]
            rejected = self.stats["rejected"]
        if total == 0:
            return float("nan")
        return rejected / total

    def health(self) -> dict:
        """Operator snapshot: per-layer breaker states plus verdict tallies.

        ``layers`` maps each validated layer's name to its circuit-breaker
        snapshot (state, failure counts, times opened), the last recorded
        error, and how many batches were served while it was skipped.
        ``status`` rolls the breaker states up into one operator word:
        ``"ok"`` (every layer breaker closed), ``"degraded"`` (at least
        one open or half-open), or ``"failing"`` (every layer breaker
        open — nothing can currently be scored).
        ``counts`` mirrors ``stats``; ``quarantined`` and
        ``rejection_rate`` are surfaced at the top level for dashboards.
        ``metrics`` embeds the current observability registry snapshot
        (``{}`` when ``REPRO_OBS=0``), so one ``health()`` poll carries
        both the monitor's own bookkeeping and the process-wide metrics.

        The snapshot is taken under the monitor's lock, so the verdict
        tallies and per-layer bookkeeping are mutually consistent even
        while serving threads are mid-``classify`` — a degraded verdict
        never shows up in ``degraded`` without its accepted/rejected
        half, and ``rejection_rate`` always matches ``counts``.
        """
        with self._lock:
            layers = {}
            for position in range(len(self.validator.validators)):
                health = self._layer_health(position)
                layers[self._layer_name(position)] = {
                    **health.breaker.snapshot(),
                    "last_error": health.last_error,
                    "skipped_batches": health.skipped_batches,
                }
            counts = dict(self.stats)
        scored = counts["accepted"] + counts["rejected"]
        rate = counts["rejected"] / scored if scored else float("nan")
        states = [snapshot["state"] for snapshot in layers.values()]
        if states and all(state == CircuitBreaker.OPEN for state in states):
            status = "failing"
        elif any(state != CircuitBreaker.CLOSED for state in states):
            status = "degraded"
        else:
            status = "ok"
        return {
            "status": status,
            "layers": layers,
            "counts": counts,
            "quarantined": counts["quarantined"],
            "rejection_rate": rate,
            "metrics": obs.get_registry().snapshot() if obs.enabled() else {},
        }
