"""Threshold calibration strategies for the joint discrepancy.

Both calibrators guard their inputs: an empty, non-finite, or constant
clean-score population cannot define an operating point, and silently
returning a NaN (or meaningless) threshold would poison every downstream
artifact — a bundled validator with ``epsilon = NaN`` never flags
anything. Degenerate inputs raise :class:`ValueError` with the failing
population named, so a bad calibration dies at fit time instead of
shipping.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.rates import threshold_at_fpr


def _checked_scores(scores: np.ndarray, population: str) -> np.ndarray:
    """Validate one score population; returns it as a float64 array.

    Raises :class:`ValueError` when the population is empty, contains
    non-finite scores (a NaN mean would silently become a NaN threshold),
    or is constant (``clean_scores`` all identical carry no spread to
    calibrate against — almost always a scoring bug upstream, e.g. every
    image hitting the same degraded path).
    """
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if len(scores) == 0:
        raise ValueError(f"{population} scores are empty; cannot calibrate a threshold")
    if not np.isfinite(scores).all():
        bad = int(np.count_nonzero(~np.isfinite(scores)))
        raise ValueError(
            f"{population} scores contain {bad} non-finite value(s); a NaN/inf "
            "score would poison the calibrated threshold"
        )
    return scores


def centroid_threshold(clean_scores: np.ndarray, corner_scores: np.ndarray) -> float:
    """Midpoint between the clean and corner-case score centroids.

    The paper's suggested operating point (Section IV-D3): legitimate images
    concentrate at negative discrepancy, successful corner cases at positive
    discrepancy, so the centre between both centroids balances TPR and FPR.

    Raises :class:`ValueError` when either population is empty or
    non-finite, or when ``clean_scores`` are all identical — a constant
    clean population has no centroid spread and signals broken scoring,
    not a calibratable distribution.
    """
    clean_scores = _checked_scores(clean_scores, "clean")
    corner_scores = _checked_scores(corner_scores, "corner")
    if clean_scores.min() == clean_scores.max():
        raise ValueError(
            f"clean scores are all identical ({clean_scores[0]!r}); a constant "
            "population cannot calibrate a threshold"
        )
    return float((clean_scores.mean() + corner_scores.mean()) / 2.0)


def fpr_calibrated_threshold(clean_scores: np.ndarray, target_fpr: float) -> float:
    """Threshold achieving at most ``target_fpr`` on clean data.

    Deployment often fixes an acceptable false-alarm budget instead of
    assuming corner cases are available for calibration; this only needs
    clean scores.

    Raises :class:`ValueError` on an empty, non-finite, or constant clean
    population (see :func:`centroid_threshold` for why constant scores are
    rejected).
    """
    clean_scores = _checked_scores(clean_scores, "clean")
    if clean_scores.min() == clean_scores.max():
        raise ValueError(
            f"clean scores are all identical ({clean_scores[0]!r}); a constant "
            "population cannot calibrate an FPR threshold"
        )
    return threshold_at_fpr(clean_scores, target_fpr)
