"""Threshold calibration strategies for the joint discrepancy."""

from __future__ import annotations

import numpy as np

from repro.metrics.rates import threshold_at_fpr


def centroid_threshold(clean_scores: np.ndarray, corner_scores: np.ndarray) -> float:
    """Midpoint between the clean and corner-case score centroids.

    The paper's suggested operating point (Section IV-D3): legitimate images
    concentrate at negative discrepancy, successful corner cases at positive
    discrepancy, so the centre between both centroids balances TPR and FPR.
    """
    clean_scores = np.asarray(clean_scores, dtype=np.float64)
    corner_scores = np.asarray(corner_scores, dtype=np.float64)
    if len(clean_scores) == 0 or len(corner_scores) == 0:
        raise ValueError("both score populations must be non-empty")
    return float((clean_scores.mean() + corner_scores.mean()) / 2.0)


def fpr_calibrated_threshold(clean_scores: np.ndarray, target_fpr: float) -> float:
    """Threshold achieving at most ``target_fpr`` on clean data.

    Deployment often fixes an acceptable false-alarm budget instead of
    assuming corner cases are available for calibration; this only needs
    clean scores.
    """
    return threshold_at_fpr(np.asarray(clean_scores, dtype=np.float64), target_fpr)
