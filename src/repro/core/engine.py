"""The batched validation engine: Deep Validation's production hot path.

:class:`ValidationEngine` wraps a fitted :class:`~repro.core.validator.DeepValidator`
and reroutes Algorithm 2 through three optimisations, none of which change
the scores (the differential harness pins agreement with the per-sample
reference at 1e-8):

1. **Stacked per-class SVMs** — each validated layer's per-class one-class
   SVMs are folded into a :class:`~repro.svm.packed.PackedClassSVMs`, so a
   minibatch is scored against every class with one matrix product and a
   segment-wise reduction, then gathered at the predicted label. This
   removes the per-class Python loop (and, for batch-size-1 monitoring
   traffic, the per-image round trip) from kernel evaluation.
2. **Chunked evaluation** — the forward pass and every kernel block are
   evaluated in sample chunks of ``chunk_size``, bounding transient memory
   to ``chunk_size x total_support_vectors`` floats per layer regardless
   of how large a batch callers throw at it.
3. **Score memoisation** — results are kept in an
   :class:`~repro.utils.cache.LRUCache` keyed on a content hash of the
   input batch. Calibration followed by flagging of the same images, or a
   monitor replaying a window, skips the forward pass and all kernel work.

Usage::

    engine = validator.engine()            # cached on the validator
    predictions, D = engine.discrepancies(images)
    d = engine.joint_discrepancy(images)   # Eq. 3 via the batched path
    flags = engine.flag(images)            # d > validator.epsilon
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.utils.cache import LRUCache, hash_array


def _cache_counter():
    return obs.counter(
        "engine_cache_requests_total",
        help="Engine score-cache lookups by result",
        labels=("result",),
    )


def _layer_seconds():
    return obs.histogram(
        "engine_layer_score_seconds",
        help="Per-layer kernel-scoring wall time",
        labels=("layer",),
    )


def _hash_seconds():
    return obs.histogram(
        "cache_hash_seconds",
        help="Wall time spent content-hashing batches for score-cache keys",
        labels=("caller",),
    )


def _hash_key(images: np.ndarray, caller: str) -> str:
    with obs.timed(_hash_seconds().labels(caller=caller)):
        return hash_array(images)


class ValidationEngine:
    """Vectorised, cached scoring facade over a fitted ``DeepValidator``.

    Parameters
    ----------
    validator:
        A fitted :class:`~repro.core.validator.DeepValidator`. The engine
        shares its model, per-layer validators, combiner config, and
        ``epsilon`` — it adds speed, not policy.
    chunk_size:
        Samples per evaluation chunk for both the probed forward pass and
        the stacked kernel blocks.
    cache_size:
        Number of scored batches memoised by content hash.
    """

    def __init__(self, validator, chunk_size: int = 256, cache_size: int = 32) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.validator = validator
        self.model = validator.model
        self.chunk_size = chunk_size
        self.cache = LRUCache(cache_size)

    # -- scoring ---------------------------------------------------------------

    def _empty_result(self) -> tuple[np.ndarray, np.ndarray]:
        """The ``(predictions, D)`` pair for a zero-image batch."""
        predictions = np.empty(0, dtype=np.int64)
        per_layer = np.empty((0, len(self.validator.validators)))
        predictions.flags.writeable = False
        per_layer.flags.writeable = False
        return predictions, per_layer

    def _compute(self, images: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        probabilities, representations = self.model.hidden_representations(
            images, batch_size=self.chunk_size
        )
        predictions = probabilities.argmax(axis=1)
        columns = []
        for validator in self.validator.validators:
            name = validator.layer_name
            with obs.span("engine.layer_score", layer=name), obs.timed(
                _layer_seconds().labels(layer=name)
            ):
                columns.append(
                    validator.discrepancy_batched(
                        representations[validator.layer_index],
                        predictions,
                        chunk_size=self.chunk_size,
                    )
                )
        per_layer = np.stack(columns, axis=1)
        # Frozen so cache hits can hand back the stored arrays directly.
        predictions.flags.writeable = False
        per_layer.flags.writeable = False
        return predictions, per_layer

    def discrepancies(self, images: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batched Algorithm 2: ``(predictions, D)`` for a batch of images.

        An empty batch short-circuits to ``(0,)``/``(0, L)`` results
        without touching the model — serving paths see ``n=0`` windows
        whenever every input of a batch was quarantined upstream.

        Concurrent calls with identical batches are single-flighted
        through the score cache: one thread runs the forward pass and
        kernel work (one cache miss), the rest adopt its result (cache
        hits) — N identical in-flight requests cost one computation and
        the hit/miss accounting stays exact.
        """
        if not self.validator.validators:
            raise RuntimeError("DeepValidator is not fitted")
        images = np.asarray(images)
        if len(images) == 0:
            return self._empty_result()
        key = _hash_key(images, caller="discrepancies")
        computed = False

        def compute() -> tuple[np.ndarray, np.ndarray]:
            nonlocal computed
            computed = True
            with obs.span("engine.discrepancies", batch=len(images)):
                return self._compute(images)

        result = self.cache.get_or_compute(key, compute)
        _cache_counter().labels(result="miss" if computed else "hit").inc()
        return result

    def discrepancies_resilient(
        self, images: np.ndarray, skip: frozenset[int] | set[int] = frozenset()
    ) -> tuple[np.ndarray, np.ndarray, dict[int, Exception]]:
        """Per-layer-isolated Algorithm 2: ``(predictions, D, layer_errors)``.

        The fault-tolerant counterpart of :meth:`discrepancies` used by
        :class:`~repro.core.monitor.RuntimeMonitor`: each layer validator
        is scored inside its own try/except, so one broken scorer yields a
        NaN column and an entry in ``layer_errors`` (keyed by layer
        *position* in the validated-layer list) instead of aborting the
        batch. Positions in ``skip`` (open-circuited layers) are not
        evaluated at all and also come back as NaN columns.

        When nothing is skipped and nothing fails, the result is
        bit-identical to :meth:`discrepancies` — same operations in the
        same order — and is stored under the same cache key, so recovered
        serving traffic immediately shares the normal path's cache.
        Results containing skipped or failed columns are never cached
        (a cached failure would mask recovery).

        Like :meth:`discrepancies`, identical concurrent no-skip batches
        are single-flighted: one thread computes, the rest adopt its
        ``(predictions, D)``. A thread that adopts a *faulty* in-flight
        result sees its NaN columns but an empty ``layer_errors`` map —
        the monitor independently detects non-finite columns, so failure
        accounting still fires. Batches with a non-empty ``skip`` are
        computed directly (the cache key doesn't encode the skip set).
        """
        if not self.validator.validators:
            raise RuntimeError("DeepValidator is not fitted")
        images = np.asarray(images)
        if len(images) == 0:
            predictions, per_layer = self._empty_result()
            return predictions, per_layer, {}
        if skip:
            _cache_counter().labels(result="miss").inc()
            return self._compute_resilient(images, skip)
        key = _hash_key(images, caller="discrepancies_resilient")
        computed = False
        errors_box: dict[int, Exception] = {}

        def compute() -> tuple[np.ndarray, np.ndarray]:
            nonlocal computed
            computed = True
            predictions, per_layer, errors = self._compute_resilient(images, skip)
            errors_box.update(errors)
            return predictions, per_layer

        def clean(result: tuple[np.ndarray, np.ndarray]) -> bool:
            # Never memoise a faulty result: a cached NaN column (a raising
            # scorer leaves one, but so does a silently-NaN substrate) would
            # keep serving the failure long after the layer recovered.
            return not errors_box and bool(np.isfinite(result[1]).all())

        predictions, per_layer = self.cache.get_or_compute(
            key, compute, cache_if=clean
        )
        _cache_counter().labels(result="miss" if computed else "hit").inc()
        return predictions, per_layer, dict(errors_box)

    def _compute_resilient(
        self, images: np.ndarray, skip: frozenset[int] | set[int]
    ) -> tuple[np.ndarray, np.ndarray, dict[int, Exception]]:
        """The fault-isolated computation behind :meth:`discrepancies_resilient`."""
        with obs.span(
            "engine.discrepancies_resilient", batch=len(images), skipped=len(skip)
        ):
            probabilities, representations = self.model.hidden_representations(
                images, batch_size=self.chunk_size
            )
            predictions = probabilities.argmax(axis=1)
            errors: dict[int, Exception] = {}
            columns = []
            for position, validator in enumerate(self.validator.validators):
                if position in skip:
                    columns.append(np.full(len(images), np.nan))
                    continue
                name = validator.layer_name
                try:
                    # A numerically-broken layer (NaN/Inf representations)
                    # must surface as NaN discrepancies the monitor can see,
                    # not as numpy RuntimeWarnings spamming serving logs.
                    with np.errstate(invalid="ignore", over="ignore"), obs.span(
                        "engine.layer_score", layer=name
                    ), obs.timed(_layer_seconds().labels(layer=name)):
                        columns.append(
                            validator.discrepancy_batched(
                                representations[validator.layer_index],
                                predictions,
                                chunk_size=self.chunk_size,
                            )
                        )
                except Exception as exc:  # noqa: BLE001 — isolation is the contract
                    obs.counter(
                        "engine_layer_failures_total",
                        help="Layer scorers that raised during resilient scoring",
                        labels=("layer",),
                    ).labels(layer=name).inc()
                    errors[position] = exc
                    columns.append(np.full(len(images), np.nan))
            per_layer = np.stack(columns, axis=1)
        predictions.flags.writeable = False
        per_layer.flags.writeable = False
        return predictions, per_layer, errors

    def joint_discrepancy(self, images: np.ndarray) -> np.ndarray:
        """The joint discrepancy ``d`` (Eq. 3) via the batched path."""
        _, per_layer = self.discrepancies(images)
        return self.validator.combine(per_layer)

    def flag(self, images: np.ndarray) -> np.ndarray:
        """Boolean mask of images whose joint discrepancy exceeds epsilon."""
        return self.joint_discrepancy(images) > self.validator.epsilon

    # -- introspection ---------------------------------------------------------

    @property
    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction accounting of the score cache."""
        return self.cache.stats

    @property
    def total_support_vectors(self) -> int:
        """Stacked support-vector count across validated layers (packed only)."""
        total = 0
        for validator in self.validator.validators:
            pack = validator.packed()
            if pack is not None:
                total += pack.n_support
        return total

    def __repr__(self) -> str:
        layers = len(self.validator.validators)
        return (
            f"ValidationEngine(layers={layers}, chunk_size={self.chunk_size}, "
            f"cache={self.cache.stats})"
        )
