"""The batched validation engine: Deep Validation's production hot path.

:class:`ValidationEngine` wraps a fitted :class:`~repro.core.validator.DeepValidator`
and reroutes Algorithm 2 through three optimisations, none of which change
the scores (the differential harness pins agreement with the per-sample
reference at 1e-8):

1. **Stacked per-class SVMs** — each validated layer's per-class one-class
   SVMs are folded into a :class:`~repro.svm.packed.PackedClassSVMs`, so a
   minibatch is scored against every class with one matrix product and a
   segment-wise reduction, then gathered at the predicted label. This
   removes the per-class Python loop (and, for batch-size-1 monitoring
   traffic, the per-image round trip) from kernel evaluation.
2. **Chunked evaluation** — the forward pass and every kernel block are
   evaluated in sample chunks of ``chunk_size``, bounding transient memory
   to ``chunk_size x total_support_vectors`` floats per layer regardless
   of how large a batch callers throw at it.
3. **Score memoisation** — results are kept in an
   :class:`~repro.utils.cache.LRUCache` keyed on a content hash of the
   input batch. Calibration followed by flagging of the same images, or a
   monitor replaying a window, skips the forward pass and all kernel work.

Usage::

    engine = validator.engine()            # cached on the validator
    predictions, D = engine.discrepancies(images)
    d = engine.joint_discrepancy(images)   # Eq. 3 via the batched path
    flags = engine.flag(images)            # d > validator.epsilon
"""

from __future__ import annotations

import numpy as np

from repro.utils.cache import LRUCache, hash_array


class ValidationEngine:
    """Vectorised, cached scoring facade over a fitted ``DeepValidator``.

    Parameters
    ----------
    validator:
        A fitted :class:`~repro.core.validator.DeepValidator`. The engine
        shares its model, per-layer validators, combiner config, and
        ``epsilon`` — it adds speed, not policy.
    chunk_size:
        Samples per evaluation chunk for both the probed forward pass and
        the stacked kernel blocks.
    cache_size:
        Number of scored batches memoised by content hash.
    """

    def __init__(self, validator, chunk_size: int = 256, cache_size: int = 32) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.validator = validator
        self.model = validator.model
        self.chunk_size = chunk_size
        self.cache = LRUCache(cache_size)

    # -- scoring ---------------------------------------------------------------

    def _compute(self, images: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        probabilities, representations = self.model.hidden_representations(
            images, batch_size=self.chunk_size
        )
        predictions = probabilities.argmax(axis=1)
        columns = [
            validator.discrepancy_batched(
                representations[validator.layer_index],
                predictions,
                chunk_size=self.chunk_size,
            )
            for validator in self.validator.validators
        ]
        per_layer = np.stack(columns, axis=1)
        # Frozen so cache hits can hand back the stored arrays directly.
        predictions.flags.writeable = False
        per_layer.flags.writeable = False
        return predictions, per_layer

    def discrepancies(self, images: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batched Algorithm 2: ``(predictions, D)`` for a batch of images."""
        if not self.validator.validators:
            raise RuntimeError("DeepValidator is not fitted")
        images = np.asarray(images)
        key = hash_array(images)
        return self.cache.get_or_compute(key, lambda: self._compute(images))

    def joint_discrepancy(self, images: np.ndarray) -> np.ndarray:
        """The joint discrepancy ``d`` (Eq. 3) via the batched path."""
        _, per_layer = self.discrepancies(images)
        return self.validator.combine(per_layer)

    def flag(self, images: np.ndarray) -> np.ndarray:
        """Boolean mask of images whose joint discrepancy exceeds epsilon."""
        return self.joint_discrepancy(images) > self.validator.epsilon

    # -- introspection ---------------------------------------------------------

    @property
    def stats(self) -> dict[str, int]:
        """Hit/miss/eviction accounting of the score cache."""
        return self.cache.stats

    @property
    def total_support_vectors(self) -> int:
        """Stacked support-vector count across validated layers (packed only)."""
        total = 0
        for validator in self.validator.validators:
            pack = validator.packed()
            if pack is not None:
                total += pack.n_support
        return total

    def __repr__(self) -> str:
        layers = len(self.validator.validators)
        return (
            f"ValidationEngine(layers={layers}, chunk_size={self.chunk_size}, "
            f"cache={self.cache.stats})"
        )
