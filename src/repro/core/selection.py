"""Dependability/efficiency trade-off via validator subset selection.

The paper's conclusion calls the flexibility "that allows a trade-off
between ultra dependability and high efficiency" an exciting direction: the
overhead of Deep Validation scales with the number of validated layers, so
picking the most informative subset buys speed at a controlled detection
cost. This module implements greedy forward selection over layers, scoring
each candidate subset by ROC-AUC of the joint (summed) discrepancy on a
calibration set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.roc import roc_auc_score


@dataclass
class SelectionStep:
    """One step of the greedy trade-off curve."""

    layers: list[int]
    auc: float

    def __repr__(self) -> str:
        return f"SelectionStep(layers={self.layers}, auc={self.auc:.4f})"


def greedy_layer_selection(
    clean: np.ndarray,
    corner: np.ndarray,
    max_layers: int | None = None,
) -> list[SelectionStep]:
    """Greedy forward selection of validated layers.

    ``clean`` and ``corner`` are per-layer discrepancy matrices
    (samples × layers) from a fitted all-layer validator. Returns the
    trade-off curve: at step k, the best k-layer subset found greedily and
    its joint-sum ROC-AUC. The curve lets a deployment pick the smallest
    subset meeting its detection target.
    """
    clean = np.asarray(clean, dtype=np.float64)
    corner = np.asarray(corner, dtype=np.float64)
    if clean.ndim != 2 or corner.ndim != 2 or clean.shape[1] != corner.shape[1]:
        raise ValueError("clean and corner must be (samples x layers) with equal layers")
    total_layers = clean.shape[1]
    if total_layers == 0:
        raise ValueError("need at least one layer")
    budget = total_layers if max_layers is None else min(max_layers, total_layers)

    labels = np.concatenate([np.zeros(len(clean)), np.ones(len(corner))])
    stacked = np.concatenate([clean, corner], axis=0)

    def subset_auc(layers: list[int]) -> float:
        return roc_auc_score(labels, stacked[:, layers].sum(axis=1))

    chosen: list[int] = []
    curve: list[SelectionStep] = []
    remaining = set(range(total_layers))
    for _ in range(budget):
        best_layer, best_auc = None, -1.0
        for layer in sorted(remaining):
            score = subset_auc(chosen + [layer])
            if score > best_auc:
                best_layer, best_auc = layer, score
        chosen = chosen + [best_layer]
        remaining.discard(best_layer)
        curve.append(SelectionStep(layers=list(chosen), auc=best_auc))
    return curve


def smallest_subset_reaching(
    curve: list[SelectionStep], target_auc: float
) -> SelectionStep | None:
    """First (cheapest) step on the curve meeting ``target_auc``, if any."""
    for step in curve:
        if step.auc >= target_auc:
            return step
    return None
