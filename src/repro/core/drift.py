"""Operational drift detection over the discrepancy stream.

Section IV-D6's early-warning story, systematised: a deployed system does
not only care about flagging individual inputs — a *rising rejection rate*
(or rising discrepancy level) signals that the whole operating environment
has shifted and the system is running at elevated risk. This module
monitors the stream of joint discrepancies with an exponentially weighted
moving average and raises an alarm when the level leaves the band
calibrated on clean traffic.

The monitor is thread-safe: shadow rollouts
(:class:`~repro.serve.rollout.RolloutController`) feed it from every serve
worker concurrently, so the EWMA recurrence runs under a lock —
interleaved ``observe``/``observe_batch`` calls from any number of threads
produce the same stream some serial ordering of those calls would.
``observe_batch`` evaluates the recurrence as one vectorized linear filter
rather than a per-sample Python loop, bit-identical to repeated
``observe`` calls.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np
from scipy.signal import lfilter


@dataclass
class DriftState:
    """Snapshot of the drift monitor after an observation."""

    level: float
    threshold: float
    alarming: bool
    observations: int


class DiscrepancyDriftMonitor:
    """EWMA monitor over joint discrepancies with a clean-calibrated alarm.

    Parameters
    ----------
    alpha:
        EWMA smoothing factor in (0, 1]; smaller = smoother, slower.
    sigmas:
        Alarm threshold in calibration standard deviations above the
        calibration mean of the *smoothed* level.
    warmup:
        Observations required before alarms may fire (EWMA burn-in).
    """

    def __init__(self, alpha: float = 0.1, sigmas: float = 4.0, warmup: int = 10) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if sigmas <= 0:
            raise ValueError(f"sigmas must be positive, got {sigmas}")
        if warmup < 1:
            raise ValueError(f"warmup must be >= 1, got {warmup}")
        self.alpha = alpha
        self.sigmas = sigmas
        self.warmup = warmup
        self._threshold: float | None = None
        self._level: float | None = None
        self._count = 0
        self._lock = threading.Lock()

    # -- calibration -----------------------------------------------------------

    def calibrate(self, clean_discrepancies: np.ndarray) -> float:
        """Set the alarm threshold from clean-traffic discrepancies.

        The EWMA of i.i.d. clean scores has mean ``mu`` and standard
        deviation ``sigma * sqrt(alpha / (2 - alpha))``; the threshold sits
        ``sigmas`` of those above the mean.
        """
        scores = np.asarray(clean_discrepancies, dtype=np.float64)
        if len(scores) < 2:
            raise ValueError("need at least two clean scores to calibrate")
        mu = float(scores.mean())
        sigma = float(scores.std())
        ewma_sigma = sigma * np.sqrt(self.alpha / (2.0 - self.alpha))
        with self._lock:
            self._threshold = mu + self.sigmas * ewma_sigma
            self._calibration_mean = mu
            self._level = mu
            self._count = 0
            return self._threshold

    @property
    def calibrated(self) -> bool:
        """Whether :meth:`calibrate` has run (alarms cannot fire before)."""
        return self._threshold is not None

    @property
    def threshold(self) -> float:
        if self._threshold is None:
            raise RuntimeError("monitor is not calibrated")
        return self._threshold

    # -- streaming --------------------------------------------------------------

    def observe(self, discrepancy: float) -> DriftState:
        """Feed one joint-discrepancy observation; returns the new state."""
        with self._lock:
            if self._threshold is None:
                raise RuntimeError("monitor is not calibrated")
            self._level = (1 - self.alpha) * self._level + self.alpha * float(discrepancy)
            self._count += 1
            alarming = self._count >= self.warmup and self._level > self._threshold
            return DriftState(
                level=self._level,
                threshold=self._threshold,
                alarming=alarming,
                observations=self._count,
            )

    def observe_batch(self, discrepancies: np.ndarray) -> list[DriftState]:
        """Feed a sequence of observations in order, as one vectorized step.

        The EWMA recurrence ``y[n] = (1-alpha)*y[n-1] + alpha*x[n]`` is a
        first-order IIR filter; evaluated through
        :func:`scipy.signal.lfilter` (direct form II transposed computes
        exactly ``alpha*x[n] + (1-alpha)*y[n-1]``, and IEEE-754 addition
        is commutative) the whole batch is bit-identical to a serial loop
        of :meth:`observe` calls. One lock acquisition covers the batch,
        so concurrent feeders interleave at batch granularity.
        """
        values = np.asarray(discrepancies, dtype=np.float64)
        if values.ndim != 1:
            values = values.ravel()
        if len(values) == 0:
            return []
        with self._lock:
            if self._threshold is None:
                raise RuntimeError("monitor is not calibrated")
            levels, _ = lfilter(
                [self.alpha],
                [1.0, -(1.0 - self.alpha)],
                values,
                zi=np.array([(1.0 - self.alpha) * self._level]),
            )
            counts = self._count + np.arange(1, len(values) + 1)
            alarms = (counts >= self.warmup) & (levels > self._threshold)
            self._level = float(levels[-1])
            self._count = int(counts[-1])
            return [
                DriftState(
                    level=float(level),
                    threshold=self._threshold,
                    alarming=bool(alarming),
                    observations=int(count),
                )
                for level, alarming, count in zip(levels, alarms, counts)
            ]

    def reset_stream(self) -> None:
        """Restart the stream (keeping the calibration)."""
        with self._lock:
            if self._threshold is None:
                raise RuntimeError("monitor is not calibrated")
            self._count = 0
            self._level = self._calibration_mean
