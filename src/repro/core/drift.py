"""Operational drift detection over the discrepancy stream.

Section IV-D6's early-warning story, systematised: a deployed system does
not only care about flagging individual inputs — a *rising rejection rate*
(or rising discrepancy level) signals that the whole operating environment
has shifted and the system is running at elevated risk. This module
monitors the stream of joint discrepancies with an exponentially weighted
moving average and raises an alarm when the level leaves the band
calibrated on clean traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class DriftState:
    """Snapshot of the drift monitor after an observation."""

    level: float
    threshold: float
    alarming: bool
    observations: int


class DiscrepancyDriftMonitor:
    """EWMA monitor over joint discrepancies with a clean-calibrated alarm.

    Parameters
    ----------
    alpha:
        EWMA smoothing factor in (0, 1]; smaller = smoother, slower.
    sigmas:
        Alarm threshold in calibration standard deviations above the
        calibration mean of the *smoothed* level.
    warmup:
        Observations required before alarms may fire (EWMA burn-in).
    """

    def __init__(self, alpha: float = 0.1, sigmas: float = 4.0, warmup: int = 10) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if sigmas <= 0:
            raise ValueError(f"sigmas must be positive, got {sigmas}")
        if warmup < 1:
            raise ValueError(f"warmup must be >= 1, got {warmup}")
        self.alpha = alpha
        self.sigmas = sigmas
        self.warmup = warmup
        self._threshold: float | None = None
        self._level: float | None = None
        self._count = 0

    # -- calibration -----------------------------------------------------------

    def calibrate(self, clean_discrepancies: np.ndarray) -> float:
        """Set the alarm threshold from clean-traffic discrepancies.

        The EWMA of i.i.d. clean scores has mean ``mu`` and standard
        deviation ``sigma * sqrt(alpha / (2 - alpha))``; the threshold sits
        ``sigmas`` of those above the mean.
        """
        scores = np.asarray(clean_discrepancies, dtype=np.float64)
        if len(scores) < 2:
            raise ValueError("need at least two clean scores to calibrate")
        mu = float(scores.mean())
        sigma = float(scores.std())
        ewma_sigma = sigma * np.sqrt(self.alpha / (2.0 - self.alpha))
        self._threshold = mu + self.sigmas * ewma_sigma
        self._calibration_mean = mu
        self._level = mu
        self._count = 0
        return self._threshold

    @property
    def threshold(self) -> float:
        if self._threshold is None:
            raise RuntimeError("monitor is not calibrated")
        return self._threshold

    # -- streaming --------------------------------------------------------------

    def observe(self, discrepancy: float) -> DriftState:
        """Feed one joint-discrepancy observation; returns the new state."""
        if self._threshold is None:
            raise RuntimeError("monitor is not calibrated")
        self._level = (1 - self.alpha) * self._level + self.alpha * float(discrepancy)
        self._count += 1
        alarming = self._count >= self.warmup and self._level > self._threshold
        return DriftState(
            level=self._level,
            threshold=self._threshold,
            alarming=alarming,
            observations=self._count,
        )

    def observe_batch(self, discrepancies: np.ndarray) -> list[DriftState]:
        """Feed a sequence of observations in order."""
        return [self.observe(value) for value in np.asarray(discrepancies, dtype=np.float64)]

    def reset_stream(self) -> None:
        """Restart the stream (keeping the calibration)."""
        if self._threshold is None:
            raise RuntimeError("monitor is not calibrated")
        self._count = 0
        self._level = self._calibration_mean
