"""Detection/false-positive rate helpers used by the experiment harness."""

from __future__ import annotations

import numpy as np


def true_positive_rate(scores: np.ndarray, threshold: float) -> float:
    """Fraction of (positive-class) ``scores`` at or above ``threshold``."""
    scores = np.asarray(scores)
    if len(scores) == 0:
        raise ValueError("cannot compute a rate over zero samples")
    return float((scores >= threshold).mean())


def false_positive_rate(scores: np.ndarray, threshold: float) -> float:
    """Fraction of (negative-class) ``scores`` at or above ``threshold``."""
    return true_positive_rate(scores, threshold)


def detection_rate_at_threshold(scores: np.ndarray, threshold: float) -> float:
    """Alias of :func:`true_positive_rate` in detector vocabulary."""
    return true_positive_rate(scores, threshold)


def threshold_at_fpr(negative_scores: np.ndarray, target_fpr: float) -> float:
    """Smallest threshold whose false positive rate is at most ``target_fpr``.

    Used to compare detectors at a matched operating point (the paper fixes
    FPR = 0.059 in Figure 4).
    """
    negative_scores = np.asarray(negative_scores, dtype=np.float64)
    if not 0.0 <= target_fpr <= 1.0:
        raise ValueError(f"target_fpr must be in [0, 1], got {target_fpr}")
    if len(negative_scores) == 0:
        raise ValueError("need negative scores to calibrate a threshold")
    allowed = int(np.floor(target_fpr * len(negative_scores)))
    ordered = np.sort(negative_scores)[::-1]
    if allowed >= len(ordered):
        return float(ordered[-1])
    # Threshold sits just above the (allowed+1)-th largest negative score, so
    # at most ``allowed`` negatives score >= threshold even under ties.
    return float(np.nextafter(ordered[allowed], np.inf))
