"""ROC analysis.

``roc_auc_score`` uses the rank statistic (Mann-Whitney U) so ties are
handled exactly; ``roc_curve`` enumerates thresholds in score order like
scikit-learn.
"""

from __future__ import annotations

import numpy as np


def _validate(labels: np.ndarray, scores: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    labels = np.asarray(labels)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape or labels.ndim != 1:
        raise ValueError(
            f"labels and scores must be equal-length 1-D arrays, got "
            f"{labels.shape} and {scores.shape}"
        )
    unique = set(np.unique(labels).tolist())
    if not unique <= {0, 1}:
        raise ValueError(f"labels must be binary 0/1, got values {sorted(unique)}")
    if len(unique) < 2:
        raise ValueError("both classes must be present to compute ROC statistics")
    return labels.astype(bool), scores


def roc_auc_score(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve; higher ``scores`` should mean positive.

    Computed as the Mann-Whitney U statistic with midranks, so tied scores
    contribute 1/2 — identical to the trapezoidal AUC over the full curve.
    """
    labels, scores = _validate(labels, scores)
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(len(scores))
    ranks[order] = np.arange(1, len(scores) + 1)
    # Midranks for ties.
    sorted_scores = scores[order]
    start = 0
    while start < len(sorted_scores):
        stop = start
        while stop + 1 < len(sorted_scores) and sorted_scores[stop + 1] == sorted_scores[start]:
            stop += 1
        if stop > start:
            ranks[order[start : stop + 1]] = (start + stop) / 2.0 + 1.0
        start = stop + 1
    positives = int(labels.sum())
    negatives = len(labels) - positives
    rank_sum = ranks[labels].sum()
    u_statistic = rank_sum - positives * (positives + 1) / 2.0
    return float(u_statistic / (positives * negatives))


def roc_curve(
    labels: np.ndarray, scores: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(fpr, tpr, thresholds)`` sweeping the decision threshold.

    Thresholds are the distinct scores in decreasing order; a sample is
    predicted positive when ``score >= threshold``. The curve starts at
    ``(0, 0)`` with an infinite threshold.
    """
    labels, scores = _validate(labels, scores)
    order = np.argsort(-scores, kind="mergesort")
    sorted_labels = labels[order]
    sorted_scores = scores[order]

    distinct = np.flatnonzero(np.diff(sorted_scores) != 0)
    threshold_idx = np.concatenate([distinct, [len(sorted_scores) - 1]])

    tps = np.cumsum(sorted_labels)[threshold_idx]
    fps = (threshold_idx + 1) - tps
    positives = int(labels.sum())
    negatives = len(labels) - positives

    tpr = np.concatenate([[0.0], tps / positives])
    fpr = np.concatenate([[0.0], fps / negatives])
    thresholds = np.concatenate([[np.inf], sorted_scores[threshold_idx]])
    return fpr, tpr, thresholds
