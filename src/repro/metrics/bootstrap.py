"""Bootstrap confidence intervals for detection metrics.

Small evaluation sets (200 seeds per transformation) leave meaningful
sampling noise in per-cell ROC-AUCs; percentile-bootstrap intervals make
the paper-vs-measured comparisons honest about it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.roc import roc_auc_score
from repro.utils.rng import RngLike, new_rng


@dataclass
class BootstrapResult:
    """Point estimate plus a percentile confidence interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float
    resamples: int

    def __repr__(self) -> str:
        return (
            f"{self.estimate:.4f} "
            f"[{self.lower:.4f}, {self.upper:.4f}] "
            f"@{self.confidence:.0%}"
        )


def bootstrap_auc(
    labels: np.ndarray,
    scores: np.ndarray,
    resamples: int = 1000,
    confidence: float = 0.95,
    rng: RngLike = 0,
) -> BootstrapResult:
    """Percentile-bootstrap CI for ROC-AUC.

    Positives and negatives are resampled independently (stratified), so
    every resample has both classes present.
    """
    labels = np.asarray(labels)
    scores = np.asarray(scores, dtype=np.float64)
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 10:
        raise ValueError(f"resamples must be >= 10, got {resamples}")
    estimate = roc_auc_score(labels, scores)

    gen = new_rng(rng)
    positive_scores = scores[labels == 1]
    negative_scores = scores[labels == 0]
    n_pos, n_neg = len(positive_scores), len(negative_scores)
    values = np.empty(resamples)
    for i in range(resamples):
        pos = positive_scores[gen.integers(0, n_pos, size=n_pos)]
        neg = negative_scores[gen.integers(0, n_neg, size=n_neg)]
        resampled_scores = np.concatenate([neg, pos])
        resampled_labels = np.concatenate([np.zeros(n_neg), np.ones(n_pos)])
        values[i] = roc_auc_score(resampled_labels, resampled_scores)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapResult(
        estimate=float(estimate),
        lower=float(np.quantile(values, alpha)),
        upper=float(np.quantile(values, 1.0 - alpha)),
        confidence=confidence,
        resamples=resamples,
    )
