"""Detection metrics: ROC-AUC, ROC curves, rate utilities, bootstrap CIs."""

from repro.metrics.roc import roc_auc_score, roc_curve
from repro.metrics.rates import (
    detection_rate_at_threshold,
    false_positive_rate,
    threshold_at_fpr,
    true_positive_rate,
)
from repro.metrics.bootstrap import BootstrapResult, bootstrap_auc

__all__ = [
    "roc_auc_score",
    "roc_curve",
    "detection_rate_at_threshold",
    "false_positive_rate",
    "threshold_at_fpr",
    "true_positive_rate",
    "BootstrapResult",
    "bootstrap_auc",
]
