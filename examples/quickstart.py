"""Quickstart: train a classifier, fit Deep Validation, flag corner cases.

Run with::

    python examples/quickstart.py

The first run trains a small CNN on the synthetic MNIST look-alike (about a
minute); everything is cached under ``.artifacts/`` so later runs are
instant.
"""

import numpy as np

from repro.core import DeepValidator, ValidatorConfig
from repro.transforms import Rotation
from repro.zoo import get_trained_classifier


def main() -> None:
    # 1. A trained seven-layer CNN on the MNIST look-alike (cached).
    classifier = get_trained_classifier("synth-mnist", "tiny")
    model, dataset = classifier.model, classifier.dataset
    print(f"classifier: {classifier.dataset_name}, test accuracy "
          f"{classifier.test_accuracy:.4f}")

    # 2. Fit Deep Validation on the training data (Algorithm 1): one
    #    one-class SVM per (hidden layer, class) on the representations of
    #    correctly classified training images.
    validator = DeepValidator(model, ValidatorConfig(nu=0.1))
    validator.fit(dataset.train_images, dataset.train_labels)
    print(f"fitted validators on layers: {validator.fit_summary.layers_fitted}")

    # 3. Score clean test images and rotated corner cases (Algorithm 2).
    clean = dataset.test_images[:100]
    corners = Rotation(50.0)(clean)

    clean_d = validator.joint_discrepancy(clean)
    corner_d = validator.joint_discrepancy(corners)
    print(f"mean joint discrepancy: clean {clean_d.mean():+.4f}, "
          f"rotated {corner_d.mean():+.4f}")

    # 4. Calibrate the threshold (centroid midpoint, Section IV-D3) and flag.
    epsilon = validator.calibrate_threshold(clean, corners)
    flags = validator.flag(corners)
    false_alarms = validator.flag(clean)
    print(f"epsilon = {epsilon:+.4f}")
    print(f"flagged {flags.mean():.0%} of rotated corner cases, "
          f"{false_alarms.mean():.0%} false alarms on clean images")

    assert flags.mean() > 0.8, "detector should catch most rotated inputs"
    assert false_alarms.mean() < 0.2, "detector should rarely flag clean inputs"
    print("quickstart OK")


if __name__ == "__main__":
    main()
