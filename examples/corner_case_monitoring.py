"""Fail-safe runtime monitoring of a deployed classifier.

Simulates the paper's motivating scenario: a vision system whose camera
degrades during operation (growing rotation + darkening, like a bumped
mount at dusk). A :class:`RuntimeMonitor` wraps the classifier, validates
every internal state, and calls for human intervention whenever the joint
discrepancy exceeds the calibrated threshold.

Run with::

    python examples/corner_case_monitoring.py
"""

import numpy as np

from repro import obs
from repro.core import DeepValidator, InputGuard, RuntimeMonitor, ValidatorConfig
from repro.core.thresholds import fpr_calibrated_threshold
from repro.transforms import Brightness, Compose, Rotation
from repro.zoo import get_trained_classifier


def main() -> None:
    classifier = get_trained_classifier("synth-mnist", "tiny")
    model, dataset = classifier.model, classifier.dataset

    validator = DeepValidator(model, ValidatorConfig(nu=0.1))
    validator.fit(dataset.train_images, dataset.train_labels)

    # Deployment-style calibration: pick epsilon from clean data only, at a
    # 5% false-alarm budget (no corner cases needed in advance).
    clean_scores = validator.joint_discrepancy(dataset.test_images[:200])
    validator.epsilon = fpr_calibrated_threshold(clean_scores, target_fpr=0.05)
    print(f"epsilon calibrated at 5% clean FPR: {validator.epsilon:+.4f}")

    interventions = []
    guard = InputGuard(expected_shape=dataset.train_images.shape[1:])
    monitor = RuntimeMonitor(validator, on_reject=interventions.append, guard=guard)

    # The camera degrades over ten stages: rotation and darkness grow.
    frames = dataset.test_images[200:230]
    labels = dataset.test_labels[200:230]
    print(f"{'stage':>5} {'rotation':>9} {'darkening':>10} "
          f"{'accuracy':>9} {'rejected':>9}")
    for stage in range(10):
        theta = 6.0 * stage
        darkening = -0.06 * stage
        degrade = Compose([Rotation(theta), Brightness(darkening)])
        degraded = degrade(frames) if stage else frames
        verdicts = monitor.classify(degraded)
        predictions = np.array([v.prediction for v in verdicts])
        rejected = np.array([not v.accepted for v in verdicts])
        accuracy = float((predictions == labels).mean())
        print(f"{stage:>5} {theta:>8.0f}° {darkening:>10.2f} "
              f"{accuracy:>9.2f} {rejected.mean():>9.0%}")

    # A glitched frame (sensor dropout -> NaN pixels) is quarantined by the
    # input guard as a structured verdict, never an exception.
    glitched = frames[:1].copy()
    glitched[0, 0, 4:8, 4:8] = np.nan
    quarantined = monitor.classify(glitched)[0]
    print(f"\nglitched frame verdict: {quarantined}")

    print(f"\ntotal: {monitor.stats['accepted']} accepted, "
          f"{monitor.stats['rejected']} rejected, "
          f"{monitor.stats['quarantined']} quarantined "
          f"({monitor.rejection_rate:.0%} intervention rate)")
    print(f"first rejection verdict: {interventions[0] if interventions else None}")

    health = monitor.health()
    print("\nlayer health:")
    for name, layer in health["layers"].items():
        print(f"  {name:>6}: breaker {layer['state']}, "
              f"{layer['failures']} failures, "
              f"{layer['skipped_batches']} skipped batches")

    # The observability layer was recording the whole time: dump what a
    # scraper would see (docs/observability.md catalogues every series).
    if obs.enabled():
        print("\nmetrics snapshot:")
        for name, family in sorted(obs.get_registry().snapshot().items()):
            for series in family["series"]:
                labels = ",".join(
                    f"{k}={v}" for k, v in sorted(series["labels"].items())
                )
                suffix = f"{{{labels}}}" if labels else ""
                if family["type"] == "histogram":
                    print(f"  {name}{suffix} count={series['count']:.0f} "
                          f"sum={series['sum']:.4f}s")
                else:
                    print(f"  {name}{suffix} = {series['value']:.0f}")

    # Sanity: the monitor must escalate as conditions degrade, quarantine the
    # glitched frame, and report every breaker healthy.
    assert monitor.stats["rejected"] > 0, "degraded frames should trigger rejections"
    assert monitor.stats["quarantined"] == 1, "NaN frame should be quarantined"
    assert all(l["state"] == "closed" for l in health["layers"].values())
    print("monitoring example OK")


if __name__ == "__main__":
    main()
