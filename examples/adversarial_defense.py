"""Using Deep Validation against white-box adversarial attacks.

Reproduces the Section IV-D5 use case at example scale: craft FGSM, BIM,
and Carlini-Wagner L2 adversarial examples against the MNIST-like model,
then compare how well Deep Validation and feature squeezing separate them
from clean inputs.

Run with::

    python examples/adversarial_defense.py
"""

import numpy as np

from repro.attacks import BIM, FGSM, CarliniL2, next_class_targets
from repro.core import DeepValidator, ValidatorConfig
from repro.detect import FeatureSqueezing
from repro.metrics import roc_auc_score
from repro.zoo import get_trained_classifier


def main() -> None:
    classifier = get_trained_classifier("synth-mnist", "tiny")
    model, dataset = classifier.model, classifier.dataset

    validator = DeepValidator(model, ValidatorConfig(nu=0.1))
    validator.fit(dataset.train_images, dataset.train_labels)
    squeezer = FeatureSqueezing(model, greyscale=True)
    squeezer.fit(dataset.train_images, dataset.train_labels)

    # Attack 30 correctly classified test images.
    predictions = model.predict(dataset.test_images)
    correct = np.flatnonzero(predictions == dataset.test_labels)[:30]
    seeds = dataset.test_images[correct]
    labels = dataset.test_labels[correct]
    clean_dv = validator.joint_discrepancy(seeds)
    clean_fs = squeezer.score(seeds)

    attacks = [
        ("FGSM eps=0.3", FGSM(model, epsilon=0.3), None),
        ("BIM eps=0.3", BIM(model, epsilon=0.3, alpha=0.05, steps=10), None),
        ("CW2 (Next)", CarliniL2(model, steps=100, search_steps=2),
         next_class_targets(labels)),
    ]
    print(f"{'attack':>14} {'success':>8} {'DV AUC':>8} {'FS AUC':>8}")
    for name, attack, targets in attacks:
        if targets is None:
            result = attack.generate(seeds, labels)
        else:
            result = attack.generate(seeds, labels, targets)
        sae = result.sae_images
        if len(sae) == 0:
            print(f"{name:>14} {'0%':>8} {'-':>8} {'-':>8}")
            continue
        roc_labels = np.concatenate([np.zeros(len(seeds)), np.ones(len(sae))])
        dv_auc = roc_auc_score(
            roc_labels, np.concatenate([clean_dv, validator.joint_discrepancy(sae)])
        )
        fs_auc = roc_auc_score(
            roc_labels, np.concatenate([clean_fs, squeezer.score(sae)])
        )
        print(f"{name:>14} {result.success_rate:>8.0%} {dv_auc:>8.4f} {fs_auc:>8.4f}")

    print("adversarial defense example OK")


if __name__ == "__main__":
    main()
