"""How Deep Validation reacts to gradually increasing distortion.

Reproduces the Section IV-D6 story at example scale: sweep one
transformation from gentle to severe and watch (a) the model's success rate
(how often it is fooled), (b) Deep Validation's detection rate on the
fooled inputs, and (c) its detection rate on the not-yet-fooled inputs —
the early-warning signal that the system is operating at elevated risk.

Run with::

    python examples/distortion_sensitivity.py [rotation|scale|brightness]
"""

import sys

import numpy as np

from repro.core import DeepValidator, ValidatorConfig
from repro.core.thresholds import fpr_calibrated_threshold
from repro.transforms import Brightness, Rotation, Scale
from repro.zoo import get_trained_classifier

SWEEPS = {
    "rotation": [Rotation(float(t)) for t in range(5, 66, 10)],
    "scale": [Scale(s, s) for s in (0.9, 0.8, 0.7, 0.6, 0.5, 0.4)],
    "brightness": [Brightness(b) for b in (0.1, 0.2, 0.3, 0.4, 0.5, 0.6)],
}


def main(kind: str = "rotation") -> None:
    if kind not in SWEEPS:
        raise SystemExit(f"unknown sweep {kind!r}; pick one of {sorted(SWEEPS)}")
    classifier = get_trained_classifier("synth-mnist", "tiny")
    model, dataset = classifier.model, classifier.dataset

    validator = DeepValidator(model, ValidatorConfig(nu=0.1))
    validator.fit(dataset.train_images, dataset.train_labels)
    clean_scores = validator.joint_discrepancy(dataset.test_images[:200])
    threshold = fpr_calibrated_threshold(clean_scores, target_fpr=0.059)

    seeds = dataset.test_images[200:300]
    labels = dataset.test_labels[200:300]
    keep = model.predict(seeds) == labels
    seeds, labels = seeds[keep], labels[keep]

    print(f"sweeping {kind}; detector pinned at 5.9% clean FPR")
    print(f"{'config':>28} {'success':>8} {'det(SCC)':>9} {'det(FCC)':>9}")
    fooled_rates = []
    for transform in SWEEPS[kind]:
        distorted = transform(seeds)
        scc = model.predict(distorted) != labels
        scores = validator.joint_discrepancy(distorted)
        det_scc = float((scores[scc] > threshold).mean()) if scc.any() else float("nan")
        det_fcc = float((scores[~scc] > threshold).mean()) if (~scc).any() else float("nan")
        fooled_rates.append(scc.mean())
        print(f"{transform.describe():>28} {scc.mean():>8.0%} "
              f"{det_scc:>9.2f} {det_fcc:>9.2f}")

    assert fooled_rates[-1] > fooled_rates[0], "distortion sweep should degrade the model"
    print("distortion sensitivity example OK")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "rotation")
