"""Export viewable artifacts: the Figure 2 gallery and a full text report.

Writes, under ``./artifacts-out``:

* ``gallery/`` — one PGM/PPM image per corner-case transformation
  (viewable with any image viewer), the paper's Figure 2 material;
* ``report.md`` — every table and figure of the evaluation as text.

Run with::

    python examples/export_artifacts.py [output-dir]
"""

import sys
from pathlib import Path

from repro.data.images import export_corner_case_gallery
from repro.experiments.context import get_context
from repro.experiments.report import write_report


def main(output: str = "artifacts-out") -> None:
    output_dir = Path(output)
    context = get_context("synth-mnist", "tiny")

    written = export_corner_case_gallery(context.suite, output_dir / "gallery")
    print(f"wrote {len(written)} gallery images to {output_dir / 'gallery'}")
    for path in written:
        print(f"  {path.name}")

    report_path = write_report(
        output_dir / "report.md",
        profile="tiny",
        include_attacks=False,  # the attack battery takes minutes; opt in
        include_figures=True,
    )
    print(f"wrote evaluation report to {report_path}")
    print("export example OK")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "artifacts-out")
